"""Counterexample patterns (paper Sec. VI, Def. 8 and Table I).

A *pattern* is "a BFL formula where non-terminal symbols might be present";
it *matches* a formula when a valid BFL formula can be generated from it.
We realise non-terminal symbols as :class:`Hole` nodes and implement
structural matching with consistent bindings.  The four patterns of
Table I ship ready-made:

* ``pattern1 ::= MCS(phi)``
* ``pattern2 ::= MPS(phi)``
* ``pattern3 ::= MCS(phi_1) and ... and MCS(phi_n)``
* ``pattern4 ::= MPS(phi_1) and ... and MPS(phi_n)``

Patterns 3 and 4 are variadic, so they use a matcher over flattened
conjunctions rather than a fixed template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..logic.ast_nodes import (
    MCS,
    MPS,
    And,
    Atom,
    Constant,
    Evidence,
    Formula,
    Vot,
)


@dataclass(frozen=True)
class Hole(Formula):
    """A non-terminal symbol inside a pattern (Def. 8)."""

    index: int

    def children(self) -> Tuple[Formula, ...]:
        return ()


#: A binding maps hole indices to the formulae they matched.
Binding = Dict[int, Formula]


def match(template: Formula, formula: Formula) -> Optional[Binding]:
    """Structurally match ``formula`` against ``template``.

    Holes match any subformula; repeated holes must bind consistently.

    Returns:
        The hole binding, or ``None`` when the formula does not match.
    """
    binding: Binding = {}
    if _match(template, formula, binding):
        return binding
    return None


def _match(template: Formula, formula: Formula, binding: Binding) -> bool:
    if isinstance(template, Hole):
        bound = binding.get(template.index)
        if bound is None:
            binding[template.index] = formula
            return True
        return bound == formula
    if type(template) is not type(formula):
        return False
    if isinstance(template, Atom):
        return template.name == formula.name
    if isinstance(template, Constant):
        return template.value == formula.value
    if isinstance(template, Evidence):
        if template.assignments != formula.assignments:
            return False
        return _match(template.operand, formula.operand, binding)
    if isinstance(template, Vot):
        if (
            template.operator != formula.operator
            or template.threshold != formula.threshold
            or len(template.operands) != len(formula.operands)
        ):
            return False
        return all(
            _match(t, f, binding)
            for t, f in zip(template.operands, formula.operands)
        )
    template_children = template.children()
    formula_children = formula.children()
    if len(template_children) != len(formula_children):
        return False
    return all(
        _match(t, f, binding)
        for t, f in zip(template_children, formula_children)
    )


def flatten_conjunction(formula: Formula) -> List[Formula]:
    """The conjuncts of a (possibly nested) chain of ``And`` nodes."""
    if isinstance(formula, And):
        return flatten_conjunction(formula.left) + flatten_conjunction(
            formula.right
        )
    return [formula]


@dataclass(frozen=True)
class Pattern:
    """A named counterexample pattern with a matcher.

    Attributes:
        name: Identifier, e.g. ``"pattern1"``.
        description: The Table I shape, e.g. ``"MCS(phi)"``.
        matcher: Returns the matched subformulae (the operands of the
            MCS/MPS occurrences) or ``None``.
    """

    name: str
    description: str
    matcher: Callable[[Formula], Optional[Tuple[Formula, ...]]]

    def matches(self, formula: Formula) -> Optional[Tuple[Formula, ...]]:
        """Matched operands, or ``None``."""
        return self.matcher(formula)


def _match_pattern1(formula: Formula) -> Optional[Tuple[Formula, ...]]:
    if isinstance(formula, MCS):
        return (formula.operand,)
    return None


def _match_pattern2(formula: Formula) -> Optional[Tuple[Formula, ...]]:
    if isinstance(formula, MPS):
        return (formula.operand,)
    return None


def _match_all_conjuncts(
    formula: Formula, wrapper: type
) -> Optional[Tuple[Formula, ...]]:
    conjuncts = flatten_conjunction(formula)
    if len(conjuncts) < 2:
        return None
    operands = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, wrapper):
            return None
        operands.append(conjunct.operand)
    return tuple(operands)


def _match_pattern3(formula: Formula) -> Optional[Tuple[Formula, ...]]:
    return _match_all_conjuncts(formula, MCS)


def _match_pattern4(formula: Formula) -> Optional[Tuple[Formula, ...]]:
    return _match_all_conjuncts(formula, MPS)


PATTERN_1 = Pattern("pattern1", "MCS(phi)", _match_pattern1)
PATTERN_2 = Pattern("pattern2", "MPS(phi)", _match_pattern2)
PATTERN_3 = Pattern(
    "pattern3", "MCS(phi_1) and ... and MCS(phi_n)", _match_pattern3
)
PATTERN_4 = Pattern(
    "pattern4", "MPS(phi_1) and ... and MPS(phi_n)", _match_pattern4
)

#: Table I's patterns, most specific first (3/4 before their unary cases).
TABLE1_PATTERNS: Tuple[Pattern, ...] = (
    PATTERN_3,
    PATTERN_4,
    PATTERN_1,
    PATTERN_2,
)


def classify(formula: Formula) -> List[str]:
    """Names of the Table I patterns that match ``formula``."""
    return [
        pattern.name
        for pattern in TABLE1_PATTERNS
        if pattern.matches(formula) is not None
    ]
