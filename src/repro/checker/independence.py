"""IBE, IDP and SUP (paper Secs. III-B and IV).

``IBE(phi)`` is the set of basic events whose value can influence the truth
of ``phi``.  On a *reduced* ordered BDD the support (the paper's ``VarB``)
is exactly that set, which is why Algorithm 1 decides
``IDP(phi, phi') == 1`` iff the supports of the two BDDs are disjoint.
The enumeration-based definition lives in
:meth:`repro.logic.semantics.ReferenceSemantics.influencing_basic_events`;
the test suite proves the two coincide.
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.ast_nodes import Atom, Formula
from .translate import FormulaTranslator


def influencing_basic_events(
    translator: FormulaTranslator, formula: Formula
) -> FrozenSet[str]:
    """``IBE(formula)`` via BDD support (``VarB(BT(formula))``)."""
    return translator.support(formula)


def shared_influencers(
    translator: FormulaTranslator, left: Formula, right: Formula
) -> FrozenSet[str]:
    """``IBE(left) intersect IBE(right)`` — the witnesses of dependence.

    The paper's Property 8 discussion returns exactly this set ({H1} for
    CIO vs CIS) to explain *why* two elements are dependent.
    """
    return influencing_basic_events(translator, left) & influencing_basic_events(
        translator, right
    )


def independent(
    translator: FormulaTranslator, left: Formula, right: Formula
) -> bool:
    """``IDP(left, right)``: no shared influencing basic event."""
    return not shared_influencers(translator, left, right)


def superfluous(translator: FormulaTranslator, element: str) -> bool:
    """``SUP(e) ::= IDP(e, e_top)``: the element never influences the TLE."""
    return independent(
        translator, Atom(element), Atom(translator.tree.top)
    )
