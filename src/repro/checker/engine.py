"""The model-checking facade: one object that answers every BFL query.

:class:`ModelChecker` wires together Algorithm 1 (translation + caches),
Algorithm 2 (vector checking), Algorithm 3 (satisfaction sets), Algorithm 4
(counterexamples) and the IDP/SUP machinery, and accepts formulae either as
AST objects or as DSL text.

Example:
    >>> from repro.casestudy import build_covid_tree
    >>> from repro.checker import ModelChecker
    >>> checker = ModelChecker(build_covid_tree())
    >>> checker.check("forall (IS => MoT)")
    False
    >>> [sorted(s) for s in checker.satisfaction_set("MCS(MoT) & IS").failed_sets()]
    [['H1', 'H5', 'IS']]
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Union

from ..bdd.manager import BDDManager
from ..errors import LogicError, StatusVectorError
from ..ft.tree import FaultTree, StatusVector
from ..logic.ast_nodes import (
    MCS,
    MPS,
    Atom,
    Formula,
    Query,
    Statement,
)
from ..logic.parser import parse
from ..logic.scope import MinimalityScope
from .counterexample import Counterexample, algorithm4, closest_counterexample
from .evaluate import check as algorithm2_check
from .independence import influencing_basic_events
from .results import IndependenceResult, SatisfactionSet
from .satisfy import satisfying_cubes, satisfying_vectors
from .translate import FormulaTranslator

#: Formulae may be passed as AST nodes or as DSL text.
FormulaLike = Union[Formula, str]
StatementLike = Union[Statement, str]


class ModelChecker:
    """BFL model checker for one fault tree.

    Args:
        tree: The fault tree ``T``.
        scope: MCS/MPS minimality scope (default SUPPORT; DESIGN.md dev. 2).
        order: Optional BDD variable order (basic-event names); defaults to
            declaration order.
        monotone_fast_path: Use the single-pass minsol MCS/MPS construction
            for monotone operands (ablation arm; results are identical).
        auto_gc: Arm automatic BDD garbage collection on the session's
            manager (reclaims dead intermediate BDDs at translation safe
            points; see ``BDDManager.collect``).
        auto_reorder: Arm automatic in-place variable reordering (Rudell
            sifting) when live nodes grow past the manager's trigger.
        gc_trigger: Optional live-node count arming the first collection.
        reorder_trigger: Optional live-node count arming the first sift.
        manager: Optional pre-built BDD manager to translate into —
            typically one rebuilt by ``BDDManager.load_snapshot`` for a
            warm-started session.  ``order`` is ignored when given (the
            manager's own variable order wins).
    """

    def __init__(
        self,
        tree: FaultTree,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        order: Optional[Sequence[str]] = None,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
        manager: Optional[BDDManager] = None,
    ) -> None:
        self.tree = tree
        self.translator = FormulaTranslator(
            tree,
            manager=manager,
            scope=scope,
            order=order,
            monotone_fast_path=monotone_fast_path,
            auto_gc=auto_gc,
            auto_reorder=auto_reorder,
            gc_trigger=gc_trigger,
            reorder_trigger=reorder_trigger,
        )

    # ------------------------------------------------------------------
    # Input normalisation
    # ------------------------------------------------------------------

    def _statement(self, statement: StatementLike) -> Statement:
        if isinstance(statement, str):
            return parse(statement)
        return statement

    def _formula(self, formula: FormulaLike) -> Formula:
        statement = self._statement(formula)
        if not isinstance(statement, Formula):
            raise LogicError(
                "expected a layer-1 formula; got a layer-2 query "
                "(exists/forall/IDP/SUP)"
            )
        return statement

    def _vector(
        self,
        vector: Optional[StatusVector] = None,
        failed: Optional[Sequence[str]] = None,
        bits: Optional[Sequence[int]] = None,
    ) -> Dict[str, bool]:
        given = [value for value in (vector, failed, bits) if value is not None]
        if len(given) != 1:
            raise StatusVectorError(
                "provide exactly one of: vector=, failed=, bits="
            )
        if vector is not None:
            self.tree.check_vector(vector)
            return {n: bool(vector[n]) for n in self.tree.basic_events}
        if failed is not None:
            return self.tree.vector_from_failed(failed)
        return self.tree.vector_from_bits(bits)

    # ------------------------------------------------------------------
    # Checking (Algorithm 2 + layer 2)
    # ------------------------------------------------------------------

    def check(
        self,
        statement: StatementLike,
        vector: Optional[StatusVector] = None,
        failed: Optional[Sequence[str]] = None,
        bits: Optional[Sequence[int]] = None,
    ) -> bool:
        """``b, T |= phi`` (layer 1, needs a vector) or ``T |= psi``
        (layer 2, must not get one).

        Args:
            statement: Formula/query as AST or DSL text.
            vector: Status vector as a name->bool mapping.
            failed: Alternative: the set of failed basic events.
            bits: Alternative: 0/1 bits in declaration order (the paper's
                ``b = (b1, ..., bn)`` notation).
        """
        parsed = self._statement(statement)
        if isinstance(parsed, Query):
            if vector is not None or failed is not None or bits is not None:
                raise LogicError(
                    "layer-2 queries quantify over vectors; do not pass one"
                )
            return self._check_query(parsed)
        return algorithm2_check(
            self.translator, parsed, self._vector(vector, failed, bits)
        )

    def _check_query(self, query: Query) -> bool:
        # The statement-type dispatch lives next to the query-kind
        # registry so the checker facade and the service layer cannot
        # drift apart (lazy import: the registry sits above this module).
        from ..engine import check_statement

        return check_statement(self, query)

    # ------------------------------------------------------------------
    # Satisfaction sets (Algorithm 3)
    # ------------------------------------------------------------------

    def satisfaction_set(self, formula: FormulaLike) -> SatisfactionSet:
        """``[[formula]]``: every satisfying status vector, plus the cube
        view used for cut-set style reporting."""
        parsed = self._formula(formula)
        return SatisfactionSet(
            formula=parsed,
            basic_events=tuple(self.tree.basic_events),
            cubes=tuple(satisfying_cubes(self.translator, parsed)),
            vectors=tuple(satisfying_vectors(self.translator, parsed)),
        )

    def minimal_cut_sets(self, element: Optional[str] = None) -> List[FrozenSet[str]]:
        """MCSs of ``element`` (default: the top level event) via
        ``[[MCS(element)]]``."""
        target = element if element is not None else self.tree.top
        return self.satisfaction_set(MCS(Atom(target))).failed_sets()

    def minimal_path_sets(self, element: Optional[str] = None) -> List[FrozenSet[str]]:
        """MPSs of ``element`` (default: the top level event) via
        ``[[MPS(element)]]``."""
        target = element if element is not None else self.tree.top
        return self.satisfaction_set(MPS(Atom(target))).operational_sets()

    # ------------------------------------------------------------------
    # Independence (IDP / SUP) and IBE
    # ------------------------------------------------------------------

    def influencing(self, formula: FormulaLike) -> FrozenSet[str]:
        """``IBE(formula)`` via BDD support."""
        return influencing_basic_events(self.translator, self._formula(formula))

    def independence(
        self, left: FormulaLike, right: FormulaLike
    ) -> IndependenceResult:
        """``IDP(left, right)`` with the shared-influencer explanation."""
        left_f = self._formula(left)
        right_f = self._formula(right)
        left_ibe = influencing_basic_events(self.translator, left_f)
        right_ibe = influencing_basic_events(self.translator, right_f)
        return IndependenceResult(
            independent=not (left_ibe & right_ibe),
            left_influencers=left_ibe,
            right_influencers=right_ibe,
            shared=left_ibe & right_ibe,
        )

    def superfluous(self, element: str) -> bool:
        """``SUP(element)``."""
        return self.independence(Atom(element), Atom(self.tree.top)).independent

    # ------------------------------------------------------------------
    # Counterexamples (Algorithm 4)
    # ------------------------------------------------------------------

    def counterexample(
        self,
        formula: FormulaLike,
        vector: Optional[StatusVector] = None,
        failed: Optional[Sequence[str]] = None,
        bits: Optional[Sequence[int]] = None,
        method: str = "algorithm4",
    ) -> Counterexample:
        """A counterexample vector ``b'`` for an unsatisfied formula.

        Args:
            formula: The layer-1 formula.
            vector / failed / bits: The vector ``b`` (one of the three).
            method: ``"algorithm4"`` (the paper's greedy walk) or
                ``"closest"`` (Hamming-minimal Def. 7 witness).
        """
        parsed = self._formula(formula)
        b = self._vector(vector, failed, bits)
        if method == "algorithm4":
            return algorithm4(self.translator, parsed, b)
        if method == "closest":
            result = closest_counterexample(self.translator, parsed, b)
            if result is None:
                from ..errors import NoCounterexampleError

                raise NoCounterexampleError(
                    "the formula is unsatisfiable for this tree"
                )
            return result
        raise ValueError(f"unknown counterexample method {method!r}")

    # ------------------------------------------------------------------
    # Repair regions (SYNTHESIZE)
    # ------------------------------------------------------------------

    def synthesize(
        self,
        formula: StatementLike,
        candidates: Optional[Sequence[str]] = None,
    ):
        """Must-1 / must-0 / don't-care repair regions of ``formula``.

        Args:
            formula: Layer-1 target property, or a ``SYNTHESIZE(...)``
                statement (whose embedded candidates win; passing both
                is an error).

        Returns:
            :class:`repro.checker.synthesis.SynthesisRegions`.
        """
        from ..logic.ast_nodes import Synthesize
        from .synthesis import synthesis_regions

        parsed = self._statement(formula)
        if isinstance(parsed, Synthesize):
            if candidates is not None and parsed.candidates:
                raise LogicError(
                    "pass candidates either in the SYNTHESIZE(...) text "
                    "or as the candidates argument, not both"
                )
            target = parsed.formula
            chosen = candidates or parsed.candidates or None
        else:
            target = self._formula(parsed)
            chosen = candidates
        return synthesis_regions(self.translator, target, chosen)

    # ------------------------------------------------------------------
    # Service-layer specs (the query-kind registry)
    # ------------------------------------------------------------------

    def execute(
        self,
        query,
        probabilities: Optional[Mapping[str, float]] = None,
    ):
        """Answer one service-layer query spec through the query-kind
        registry — the same hooks :class:`repro.service.BatchAnalyzer`
        dispatches with, minus governors and sharding.

        Args:
            query: A :class:`repro.service.QuerySpec`, a JSON-style
                mapping, DSL text, or an AST statement.
            probabilities: Per-event failure probabilities for the
                ``probability`` / ``probability-sweep`` kinds.

        Returns:
            :class:`repro.service.QueryResult` (errors are captured in
            the result row, exactly as the batch service reports them).
        """
        from ..engine import CheckerSession, run_query
        from ..service.queries import QuerySpec, specs_from_any

        if isinstance(query, QuerySpec):
            spec = query
        else:
            spec = specs_from_any([query])[0]
        return run_query(CheckerSession(self, probabilities), spec)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def manager(self) -> BDDManager:
        """The underlying BDD manager (for size statistics etc.)."""
        return self.translator.manager

    def cache_stats(self) -> Dict[str, int]:
        """Algorithm 1 cache counters."""
        stats = self.translator.stats
        return {
            "formula_hits": stats.formula_hits,
            "formula_misses": stats.formula_misses,
            "element_requests": stats.element_requests,
            "bdd_nodes": self.manager.node_count(),
        }
