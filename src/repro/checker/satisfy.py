"""Algorithm 3: compute all satisfying status vectors ``[[chi]]``.

Build ``BT(chi)`` (Algorithm 1), then collect every path to the ``1``
terminal (``AllSat``).  Each path is a *cube* — a partial assignment whose
unmentioned basic events are don't-cares; expanding the don't-cares yields
the complete satisfaction set of vectors.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..bdd.allsat import iter_cubes, iter_models
from ..logic.ast_nodes import Formula
from .translate import FormulaTranslator


def satisfying_cubes(
    translator: FormulaTranslator, formula: Formula
) -> List[Dict[str, bool]]:
    """One partial assignment per BDD path to ``1`` (don't-cares omitted)."""
    root = translator.bdd(formula)
    return list(iter_cubes(translator.manager, root))


def iter_satisfying_vectors(
    translator: FormulaTranslator, formula: Formula
) -> Iterator[Dict[str, bool]]:
    """Lazily yield every total status vector satisfying ``formula``."""
    root = translator.bdd(formula)
    yield from iter_models(
        translator.manager, root, list(translator.basic_events)
    )


def satisfying_vectors(
    translator: FormulaTranslator, formula: Formula
) -> List[Dict[str, bool]]:
    """The paper's ``[[formula]]`` as a list of total status vectors."""
    return list(iter_satisfying_vectors(translator, formula))


def count_satisfying_vectors(
    translator: FormulaTranslator, formula: Formula
) -> int:
    """``|[[formula]]|`` without materialising the vectors."""
    root = translator.bdd(formula)
    return translator.manager.sat_count(root, list(translator.basic_events))
