"""Algorithm 1: translate BFL formulae to BDDs, with caching.

Implements the recursion scheme of the paper verbatim::

    BT(e)              = Psi_FT(e)
    BT(not phi)        = NOT BT(phi)
    BT(phi and phi')   = BT(phi) AND BT(phi')
    BT(phi[e -> v])    = Restrict(BT(phi), e, v)
    BT(MCS(phi))       = BT(phi) AND NOT exists V'. (V' < V AND BT(phi)[V->V'])
    BT(exists phi)     = exists V. BT(phi)          (non-false test)
    BT(forall phi)     = not exists V. not BT(phi)  (tautology test)
    IDP(phi, phi')     = VarB(BT(phi)) disjoint VarB(BT(phi'))

plus the derived operators (or/implies/equiv/Vot/MPS) built directly with
BDD operations — the test suite proves them equal to translating the
desugared formulae.  Intermediate results ``BT(...)`` and ``Psi_FT(...)``
are memoised, as the paper prescribes ("store intermediate results ... in a
cache in case they are used several times").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..bdd.manager import BDDManager
from ..bdd.minimal import (
    maximal_assignments,
    maximal_assignments_monotone,
    minimal_assignments,
    minimal_assignments_monotone,
)
from ..bdd.ref import Ref
from ..errors import LogicError
from ..ft.to_bdd import TreeTranslator
from ..ft.tree import FaultTree
from ..logic.ast_nodes import (
    MCS,
    MPS,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Formula,
    Implies,
    Not,
    NotEquiv,
    Or,
    Vot,
)
from ..logic.scope import MinimalityScope


@dataclass
class CacheStats:
    """Hit/miss counters for the Algorithm 1 caches (tested explicitly)."""

    formula_hits: int = 0
    formula_misses: int = 0
    element_requests: int = 0

    def reset(self) -> None:
        self.formula_hits = 0
        self.formula_misses = 0
        self.element_requests = 0


class FormulaTranslator:
    """Caching translator ``BT`` from BFL formulae to BDDs over one tree.

    Args:
        tree: The fault tree ``T``.
        manager: BDD manager to build in; a fresh one over the tree's basic
            events (declaration order, or ``order``) is created if omitted.
        scope: Minimality scope for MCS/MPS (DESIGN.md deviation 2).
        monotone_fast_path: When True, MCS/MPS of *monotone* operands use
            the single-pass minsol construction instead of the paper's
            primed-relation construction (both are implemented; the
            ablation benchmark compares them).
        auto_gc: Arm the manager's automatic garbage collection (fires at
            translation safe points; see ``BDDManager.checkpoint``).
        auto_reorder: Arm automatic in-place sifting.  The primed-relation
            MCS/MPS construction no longer depends on the interleaved
            original/primed layout staying monotone — its primed copy
            falls back to a Shannon rebuild when sifting has moved the
            pairs apart (see ``repro.bdd.minimal._substitute_fresh``).
        gc_trigger: Optional live-node count arming the first collection.
        reorder_trigger: Optional live-node count arming the first sift.
    """

    def __init__(
        self,
        tree: FaultTree,
        manager: Optional[BDDManager] = None,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        order: Optional[Sequence[str]] = None,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
    ) -> None:
        from ..bdd.minimal import ensure_primed, prime_name

        if manager is None:
            # Interleave each basic event with its primed copy: the
            # subset relation (AND_k v'_k => v_k) of the MCS construction
            # is then linear-size, whereas appending all primes at the end
            # makes it exponential in the number of events.
            base = list(order if order is not None else tree.basic_events)
            interleaved: List[str] = []
            for name in base:
                interleaved.append(name)
                interleaved.append(prime_name(name))
            manager = BDDManager(interleaved)
        else:
            # Caller-provided manager: declare whatever basic events it is
            # missing (a variant fork may add events to a shared kernel),
            # then fall back to appending the primes in the manager's
            # level order (correct, possibly slower).
            declared = set(manager.variables)
            missing = [
                name for name in tree.basic_events if name not in declared
            ]
            if missing:
                manager.declare(*missing)
            ensure_primed(
                manager, sorted(tree.basic_events, key=manager.level_of)
            )
        arm_gc = auto_gc or gc_trigger is not None
        arm_reorder = auto_reorder or reorder_trigger is not None
        if arm_gc or arm_reorder:
            # An explicit trigger arms the feature (as documented), and
            # unrequested knobs pass None so a manager the caller already
            # armed via configure_memory is never silently disarmed.
            manager.configure_memory(
                auto_gc=True if arm_gc else None,
                auto_reorder=True if arm_reorder else None,
                gc_trigger=gc_trigger,
                reorder_trigger=reorder_trigger,
            )
        self.tree = tree
        self.manager = manager
        self.scope = scope
        self.monotone_fast_path = monotone_fast_path
        self.tree_translator = TreeTranslator(tree, manager)
        self.stats = CacheStats()
        self._cache: Dict[Formula, Ref] = {}

    # ------------------------------------------------------------------

    def bdd(self, formula: Formula) -> Ref:
        """``BT(formula)`` with memoisation."""
        cached = self._cache.get(formula)
        if cached is not None:
            self.stats.formula_hits += 1
            return cached
        self.stats.formula_misses += 1
        result = self._translate(formula)
        self._cache[formula] = result
        # Safe point: every function this translation produced is pinned
        # by the caches, so automatic GC/reordering may fire here.
        self.manager.checkpoint()
        return result

    def _translate(self, formula: Formula) -> Ref:
        manager = self.manager
        if isinstance(formula, Atom):
            return self._element(formula.name)
        if isinstance(formula, Constant):
            return manager.constant(formula.value)
        if isinstance(formula, Not):
            return manager.negate(self.bdd(formula.operand))
        if isinstance(formula, And):
            return manager.and_(self.bdd(formula.left), self.bdd(formula.right))
        if isinstance(formula, Or):
            return manager.or_(self.bdd(formula.left), self.bdd(formula.right))
        if isinstance(formula, Implies):
            return manager.implies(
                self.bdd(formula.left), self.bdd(formula.right)
            )
        if isinstance(formula, Equiv):
            return manager.equiv(self.bdd(formula.left), self.bdd(formula.right))
        if isinstance(formula, NotEquiv):
            return manager.xor(self.bdd(formula.left), self.bdd(formula.right))
        if isinstance(formula, Evidence):
            result = self.bdd(formula.operand)
            for name, value in formula.assignments:
                if name not in self.tree.basic_events:
                    raise LogicError(
                        f"evidence target {name!r} is not a basic event of "
                        "the tree (the status vector only covers BE)"
                    )
                result = manager.restrict(result, name, value)
            return result
        if isinstance(formula, Vot):
            operands = [self.bdd(op) for op in formula.operands]
            return self._vot(operands, formula.operator, formula.threshold)
        if isinstance(formula, MCS):
            inner = self.bdd(formula.operand)
            scope = self._minimality_scope(inner)
            if self.monotone_fast_path and self._is_monotone(inner, scope):
                return minimal_assignments_monotone(manager, inner, scope)
            return minimal_assignments(manager, inner, scope)
        if isinstance(formula, MPS):
            inner = self.bdd(formula.operand)
            scope = self._minimality_scope(inner)
            negated = manager.negate(inner)
            if self.monotone_fast_path and self._is_monotone(inner, scope):
                return maximal_assignments_monotone(manager, negated, scope)
            return maximal_assignments(manager, negated, scope)
        raise TypeError(f"cannot translate {formula!r}")

    # ------------------------------------------------------------------
    # Incremental update (the variant-sweep delta path)
    # ------------------------------------------------------------------

    def rebase(self, new_tree: FaultTree) -> frozenset:
        """Retarget the translator at an edited tree in place.

        Delegates the structural diff to
        :meth:`repro.ft.to_bdd.TreeTranslator.rebase` (unchanged element
        BDDs survive), then evicts exactly the formula-cache entries the
        edit can affect: formulae mentioning a dirty element, and — when
        the basic-event set itself changed — formulae containing MCS/MPS
        (whose minimality scope quantifies over the events) or evidence
        (whose targets are validated against the event set).  Everything
        else keeps answering from cache, which is what makes a what-if
        sweep on a warm session nearly free.

        Returns:
            The dirty element names.
        """
        from ..bdd.minimal import ensure_primed

        if new_tree is self.tree:
            return frozenset()
        be_changed = set(self.tree.basic_events) != set(
            new_tree.basic_events
        )
        dirty = self.tree_translator.rebase(new_tree)
        self.tree = new_tree
        ensure_primed(
            self.manager,
            sorted(new_tree.basic_events, key=self.manager.level_of),
        )
        for formula in [
            f
            for f in self._cache
            if _affected(f, dirty, be_changed)
        ]:
            del self._cache[formula]
        return dirty

    # ------------------------------------------------------------------

    def _element(self, name: str) -> Ref:
        if name not in self.tree:
            raise LogicError(f"formula mentions unknown element {name!r}")
        self.stats.element_requests += 1
        return self.tree_translator.element(name)

    def _vot(self, operands: List[Ref], operator: str, k: int) -> Ref:
        manager = self.manager
        at_least_k = manager.threshold(operands, k)
        if operator == ">=":
            return at_least_k
        if operator == ">":
            return manager.threshold(operands, k + 1)
        if operator == "<":
            return manager.negate(at_least_k)
        if operator == "<=":
            return manager.negate(manager.threshold(operands, k + 1))
        # operator == "=": at least k but not at least k + 1.
        return manager.and_(
            at_least_k, manager.negate(manager.threshold(operands, k + 1))
        )

    def _minimality_scope(self, inner: Ref) -> List[str]:
        if self.scope is MinimalityScope.FULL:
            return list(self.tree.basic_events)
        support = self.manager.support(inner)
        return [name for name in self.tree.basic_events if name in support]

    def _is_monotone(self, inner: Ref, scope: Sequence[str]) -> bool:
        from ..bdd.minimal import is_monotone

        return is_monotone(self.manager, inner, scope)

    # ------------------------------------------------------------------

    @property
    def basic_events(self) -> Sequence[str]:
        """Basic events of the underlying tree (the status-vector scope)."""
        return self.tree.basic_events

    def support(self, formula: Formula) -> frozenset:
        """``VarB(BT(formula))`` — used by IDP/SUP and the engine."""
        return frozenset(self.manager.support(self.bdd(formula)))

    def probability(
        self, formula: Formula, weights: Mapping[str, float]
    ) -> float:
        """``P[[formula]]`` under independent per-event weights.

        The PFL lowering path: Algorithm 1 translates the formula onto
        kernel edges (through this translator's cache), then the
        manager's iterative weighted-evaluation pass measures the result
        — so probabilistic and qualitative queries share every BDD and
        both manager-level caches.
        """
        return self.manager.probability(self.bdd(formula), weights)


def _affected(
    formula: Formula, dirty: frozenset, be_changed: bool
) -> bool:
    """Can an edit with this dirty set change ``BT(formula)``?

    Conservative syntactic test used by :meth:`FormulaTranslator.rebase`:
    True when the formula mentions a dirty element, or (with a changed
    basic-event set) contains an operator whose semantics quantify over
    or validate against the event universe (MCS/MPS, evidence).
    """
    stack: List[Formula] = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            if node.name in dirty:
                return True
        elif isinstance(node, Constant):
            pass
        elif isinstance(node, (MCS, MPS)):
            if be_changed:
                return True
            stack.append(node.operand)
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or, Implies, Equiv, NotEquiv)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Evidence):
            if be_changed:
                return True
            if any(name in dirty for name, _ in node.assignments):
                return True
            stack.append(node.operand)
        elif isinstance(node, Vot):
            stack.extend(node.operands)
        else:
            return True  # Unknown node kind: never keep a stale entry.
    return False
