"""Algorithm 4 and Def. 7: counterexample construction.

Given ``b`` with ``b, T |/= chi``, produce a vector ``b'`` with
``b', T |= chi`` whose modifications are individually necessary: flipping
any changed bit back to its original value must invalidate the formula
(Def. 7).

:func:`algorithm4` is the paper's greedy BDD walk: follow ``b`` through
``BT(chi)``; whenever the chosen edge leads to the ``0`` terminal, revise
the decision and take the sibling edge, recording the flip.  Because ROBDD
siblings are distinct, the revised edge never leads to ``0`` immediately,
and the walk terminates in the ``1`` terminal.

:func:`verify_def7` checks the Def. 7 conditions explicitly, and
:func:`exhaustive_counterexamples` enumerates *all* Def. 7-compliant
counterexamples (the reference used by the tests and by EXPERIMENTS.md's
discussion of the greedy algorithm's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import NoCounterexampleError
from ..logic.ast_nodes import Formula
from .evaluate import walk
from .satisfy import iter_satisfying_vectors
from .translate import FormulaTranslator


@dataclass(frozen=True)
class Counterexample:
    """Result of Algorithm 4.

    Attributes:
        original: The vector ``b`` that failed to satisfy the formula.
        vector: The new vector ``b'`` with ``b', T |= chi``.
        changed: Names whose value differs between ``b`` and ``b'``,
            in basic-event order.
        def7_compliant: Whether every change is individually necessary
            (checked by :func:`verify_def7`).
    """

    original: Dict[str, bool]
    vector: Dict[str, bool]
    changed: Tuple[str, ...]
    def7_compliant: bool

    @property
    def newly_failed(self) -> Tuple[str, ...]:
        """Events flipped from operational to failed."""
        return tuple(n for n in self.changed if self.vector[n])

    @property
    def newly_operational(self) -> Tuple[str, ...]:
        """Events flipped from failed to operational."""
        return tuple(n for n in self.changed if not self.vector[n])


def algorithm4(
    translator: FormulaTranslator,
    formula: Formula,
    vector: Mapping[str, bool],
) -> Counterexample:
    """The paper's Algorithm 4 (greedy BDD-walk counterexample).

    Args:
        translator: Algorithm-1 translator for the tree.
        formula: The layer-1 formula ``chi``.
        vector: The status vector ``b``.

    Returns:
        A :class:`Counterexample`; if ``b`` already satisfies the formula
        it is returned unchanged (empty ``changed``).

    Raises:
        NoCounterexampleError: If the formula is unsatisfiable over the
            tree ("if 1 not in Wt: return").
    """
    translator.tree.check_vector(vector)
    manager = translator.manager
    root = translator.bdd(formula)
    if root is manager.false:
        raise NoCounterexampleError(
            "the formula is unsatisfiable for this tree; no counterexample "
            "vector exists"
        )

    decided: Dict[str, bool] = {}
    node = root
    while not node.is_terminal:
        name = manager.name_of(node.level)
        bit = bool(vector[name])
        chosen = node.high if bit else node.low
        if chosen.is_terminal and not chosen.value:
            # Revise the decision: take the sibling branch (Algorithm 4's
            # inner `if Lab(wi) = 0` clause).  Siblings are distinct in a
            # reduced BDD, so the sibling is not the 0 terminal.
            bit = not bit
            chosen = node.high if bit else node.low
        decided[name] = bit
        node = chosen

    # "set all values b'_i which have not been set to the same values as
    # according b_i"
    new_vector = {
        name: decided.get(name, bool(vector[name]))
        for name in translator.basic_events
    }
    changed = tuple(
        name
        for name in translator.basic_events
        if new_vector[name] != bool(vector[name])
    )
    compliant = verify_def7(translator, formula, vector, new_vector) == ()
    return Counterexample(
        original={n: bool(vector[n]) for n in translator.basic_events},
        vector=new_vector,
        changed=changed,
        def7_compliant=compliant,
    )


def verify_def7(
    translator: FormulaTranslator,
    formula: Formula,
    original: Mapping[str, bool],
    candidate: Mapping[str, bool],
) -> Tuple[str, ...]:
    """Check Def. 7 for ``candidate``; return the names that violate it.

    A violation is either "the candidate does not satisfy the formula"
    (reported as ``"*"``) or a changed bit that could be flipped back to the
    original value while still satisfying the formula.
    """
    manager = translator.manager
    root = translator.bdd(formula)
    if not walk(manager, root, candidate):
        return ("*",)
    violations: List[str] = []
    for name in translator.basic_events:
        if bool(candidate[name]) == bool(original[name]):
            continue
        reverted = dict(candidate)
        reverted[name] = bool(original[name])
        if walk(manager, root, reverted):
            violations.append(name)
    return tuple(violations)


def exhaustive_counterexamples(
    translator: FormulaTranslator,
    formula: Formula,
    vector: Mapping[str, bool],
) -> List[Counterexample]:
    """All Def. 7-compliant counterexamples, by filtering ``[[chi]]``.

    Exponential reference implementation used by the tests; prefer
    :func:`algorithm4` in applications.
    """
    translator.tree.check_vector(vector)
    results: List[Counterexample] = []
    original = {n: bool(vector[n]) for n in translator.basic_events}
    for model in iter_satisfying_vectors(translator, formula):
        if verify_def7(translator, formula, original, model):
            continue
        changed = tuple(
            name
            for name in translator.basic_events
            if model[name] != original[name]
        )
        results.append(
            Counterexample(
                original=dict(original),
                vector=model,
                changed=changed,
                def7_compliant=True,
            )
        )
    return results


def closest_counterexample(
    translator: FormulaTranslator,
    formula: Formula,
    vector: Mapping[str, bool],
) -> Optional[Counterexample]:
    """A Def. 7-compliant counterexample with the fewest changed bits.

    Hamming-minimal counterexamples are always Def. 7-compliant (reverting
    any bit of a closest witness cannot stay satisfying, or it would be
    closer); this gives a canonical witness for reports.
    """
    candidates = exhaustive_counterexamples(translator, formula, vector)
    if not candidates:
        return None
    return min(candidates, key=lambda cex: (len(cex.changed), sorted(cex.changed)))
