"""Result objects returned by the model-checking engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple

from ..logic.ast_nodes import Formula
from ..logic.parser import format_formula


@dataclass(frozen=True)
class SatisfactionSet:
    """The paper's ``[[formula]]``: all satisfying status vectors.

    Attributes:
        formula: The queried formula.
        basic_events: Status-vector scope, in order.
        cubes: One partial assignment per BDD 1-path (don't-cares omitted) —
            the compact view Algorithm 3 collects.
        vectors: Every total satisfying vector (cubes with don't-cares
            expanded).
    """

    formula: Formula
    basic_events: Tuple[str, ...]
    cubes: Tuple[Dict[str, bool], ...]
    vectors: Tuple[Dict[str, bool], ...]

    def __len__(self) -> int:
        return len(self.vectors)

    def __iter__(self) -> Iterator[Dict[str, bool]]:
        return iter(self.vectors)

    def __bool__(self) -> bool:
        return bool(self.vectors)

    def failed_sets(self) -> List[FrozenSet[str]]:
        """Failed-event sets, one per *cube* (don't-cares excluded).

        For ``MCS``-shaped queries each cube's positive literals are exactly
        one minimal cut set, so this is the list FTA practitioners expect
        (e.g. the paper's "single mcs {IS, H1, H5}").
        """
        sets = {
            frozenset(name for name, value in cube.items() if value)
            for cube in self.cubes
        }
        return sorted(sets, key=lambda s: (len(s), sorted(s)))

    def operational_sets(self) -> List[FrozenSet[str]]:
        """Operational-event sets, one per cube — the MPS view."""
        sets = {
            frozenset(name for name, value in cube.items() if not value)
            for cube in self.cubes
        }
        return sorted(sets, key=lambda s: (len(s), sorted(s)))

    def describe(self, view: str = "failed") -> str:
        """Human-readable rendering used by the CLI and the case study.

        Args:
            view: ``"failed"`` (cut-set view), ``"operational"`` (path-set
                view) or ``"vectors"``.
        """
        header = f"[[ {format_formula(self.formula)} ]]"
        if view == "vectors":
            rows = [
                "(" + ", ".join(
                    f"{name}={int(vec[name])}" for name in self.basic_events
                ) + ")"
                for vec in self.vectors
            ]
        elif view == "operational":
            rows = ["{" + ", ".join(sorted(s)) + "}" for s in self.operational_sets()]
        else:
            rows = ["{" + ", ".join(sorted(s)) + "}" for s in self.failed_sets()]
        if not rows:
            return f"{header}: empty"
        body = "\n".join(f"  {row}" for row in rows)
        return f"{header}: {len(rows)} result(s)\n{body}"


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of an ``IDP``/``SUP`` query, with the explanation the paper
    gives for Property 8 (the shared influencing events)."""

    independent: bool
    left_influencers: FrozenSet[str]
    right_influencers: FrozenSet[str]
    shared: FrozenSet[str]

    def __bool__(self) -> bool:
        return self.independent

    def describe(self) -> str:
        if self.independent:
            return "independent (no shared influencing basic events)"
        return "dependent via shared influencing basic events: " + ", ".join(
            sorted(self.shared)
        )
