"""BFL model checking (paper Secs. V and VI): Algorithms 1-4, IDP/SUP,
counterexample patterns, and fault-tree synthesis."""

from .counterexample import (
    Counterexample,
    algorithm4,
    closest_counterexample,
    exhaustive_counterexamples,
    verify_def7,
)
from .engine import ModelChecker
from .evaluate import check, walk
from .independence import (
    independent,
    influencing_basic_events,
    shared_influencers,
    superfluous,
)
from .patterns import (
    PATTERN_1,
    PATTERN_2,
    PATTERN_3,
    PATTERN_4,
    TABLE1_PATTERNS,
    Hole,
    Pattern,
    classify,
    flatten_conjunction,
    match,
)
from .results import IndependenceResult, SatisfactionSet
from .scenarios import ScenarioAnalyzer, ScenarioResult
from .satisfy import (
    count_satisfying_vectors,
    iter_satisfying_vectors,
    satisfying_cubes,
    satisfying_vectors,
)
from .synthesis import (
    GeneticConfig,
    genome_to_tree,
    infer_fault_tree,
    naive_assignment_search,
    synthesize_tree,
)
from .translate import CacheStats, FormulaTranslator

__all__ = [
    "CacheStats",
    "Counterexample",
    "FormulaTranslator",
    "GeneticConfig",
    "Hole",
    "IndependenceResult",
    "ModelChecker",
    "PATTERN_1",
    "PATTERN_2",
    "PATTERN_3",
    "PATTERN_4",
    "Pattern",
    "SatisfactionSet",
    "ScenarioAnalyzer",
    "ScenarioResult",
    "TABLE1_PATTERNS",
    "algorithm4",
    "check",
    "classify",
    "closest_counterexample",
    "count_satisfying_vectors",
    "exhaustive_counterexamples",
    "flatten_conjunction",
    "genome_to_tree",
    "independent",
    "infer_fault_tree",
    "influencing_basic_events",
    "iter_satisfying_vectors",
    "match",
    "naive_assignment_search",
    "satisfying_cubes",
    "satisfying_vectors",
    "shared_influencers",
    "superfluous",
    "synthesize_tree",
    "verify_def7",
    "walk",
]
