"""High-level scenario API: the use cases from the paper's introduction.

The introduction motivates BFL with a bullet list of analyses; this module
packages each one as a method so downstream users do not have to write the
formulae by hand:

* "set evidence to analyse what-if scenarios. E.g., what are the MCSs,
  given that BE A or subsystem B has failed?" —
  :meth:`ScenarioAnalyzer.cut_sets_given` / :meth:`path_sets_given`;
* "check whether two elements are independent" — :meth:`independent`;
* "check whether the failure of one (or more) element E always leads to
  the failure of TLE" — :meth:`always_causes_failure`;
* "set upper/lower boundaries for failed elements. E.g., would element E
  always fail if at most/at least two out of A, B and C were to fail?" —
  :meth:`failure_bound_implies`;
* plus the derived screenings: single points of failure and necessary
  events (the singleton MCSs/MPSs that Sec. VII highlights, {H1} and
  {VW} for the COVID-19 tree).

Every method is a thin, typed wrapper that builds the corresponding BFL
statement and delegates to :class:`repro.checker.ModelChecker` — the
formula text is exposed in the result for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..ft.tree import FaultTree
from ..logic.ast_nodes import (
    MCS,
    MPS,
    Atom,
    Evidence,
    Forall,
    Formula,
    Implies,
    Not,
    Vot,
    conj,
)
from ..logic.parser import format_statement
from ..logic.scope import MinimalityScope
from .engine import ModelChecker


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of a scenario query, with the BFL statement that produced
    it (so reports can show *what* was checked)."""

    statement: str
    holds: bool

    def __bool__(self) -> bool:
        return self.holds


class ScenarioAnalyzer:
    """Scenario front end over one fault tree.

    Args:
        tree: The fault tree.
        element: Target element for the scenarios (default: the TLE).
        scope: MCS/MPS minimality scope.
    """

    def __init__(
        self,
        tree: FaultTree,
        element: Optional[str] = None,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
    ) -> None:
        self.tree = tree
        self.target = element if element is not None else tree.top
        self.checker = ModelChecker(tree, scope=scope)

    # ------------------------------------------------------------------

    def _verdict(self, statement) -> ScenarioResult:
        return ScenarioResult(
            statement=format_statement(statement),
            holds=self.checker.check(statement),
        )

    def always_causes_failure(self, *elements: str) -> ScenarioResult:
        """Does the joint failure of ``elements`` always fail the target?

        ``forall (e1 & ... & en => target)``.
        """
        premise = conj(*[Atom(name) for name in elements])
        return self._verdict(Forall(Implies(premise, Atom(self.target))))

    def can_cause_failure(self, *elements: str) -> ScenarioResult:
        """Can the target fail while ``elements`` are failed?

        ``exists (e1 & ... & en & target)``.
        """
        from ..logic.ast_nodes import And, Exists

        premise = conj(*[Atom(name) for name in elements])
        return self._verdict(Exists(And(premise, Atom(self.target))))

    def failure_bound_implies(
        self,
        comparison: str,
        threshold: int,
        elements: Sequence[str],
        negate_target: bool = False,
    ) -> ScenarioResult:
        """The intro's boundary scenario: ``forall (Vot_{cmp k}(elements)
        => target)`` (or ``=> !target`` with ``negate_target``).

        Example: "would E always fail if at least two of A, B, C failed?"
        is ``failure_bound_implies(">=", 2, ["A", "B", "C"])``.
        """
        vot = Vot(comparison, threshold, tuple(Atom(n) for n in elements))
        conclusion: Formula = Atom(self.target)
        if negate_target:
            conclusion = Not(conclusion)
        return self._verdict(Forall(Implies(vot, conclusion)))

    # ------------------------------------------------------------------

    def _evidence(
        self,
        formula: Formula,
        failed: Iterable[str],
        operational: Iterable[str],
    ) -> Formula:
        assignments: Tuple[Tuple[str, bool], ...] = tuple(
            [(name, True) for name in failed]
            + [(name, False) for name in operational]
        )
        if not assignments:
            return formula
        return Evidence(formula, assignments)

    def cut_sets_given(
        self,
        failed: Iterable[str] = (),
        operational: Iterable[str] = (),
    ) -> List[FrozenSet[str]]:
        """MCS-style what-if: minimal *additional* failure sets under
        evidence — ``[[MCS(target)[failed -> 1, operational -> 0]]]``."""
        formula = self._evidence(
            MCS(Atom(self.target)), failed, operational
        )
        return self.checker.satisfaction_set(formula).failed_sets()

    def path_sets_given(
        self,
        failed: Iterable[str] = (),
        operational: Iterable[str] = (),
    ) -> List[FrozenSet[str]]:
        """MPS-style what-if under evidence."""
        formula = self._evidence(
            MPS(Atom(self.target)), failed, operational
        )
        return self.checker.satisfaction_set(formula).operational_sets()

    # ------------------------------------------------------------------

    def independent(self, left: str, right: str) -> ScenarioResult:
        """``IDP(left, right)``."""
        from ..logic.ast_nodes import IDP

        return self._verdict(IDP(Atom(left), Atom(right)))

    def superfluous(self, element: str) -> ScenarioResult:
        """``SUP(element)``."""
        from ..logic.ast_nodes import SUP

        return self._verdict(SUP(element))

    def single_points_of_failure(self) -> List[str]:
        """Basic events whose failure alone fails the target
        (``forall (e => target)`` — equivalently the singleton MCSs)."""
        return [
            name
            for name in self.tree.basic_events
            if self.checker.check(
                Forall(Implies(Atom(name), Atom(self.target)))
            )
        ]

    def necessary_events(self) -> List[str]:
        """Basic events whose *operation* alone prevents the target
        (``forall (!e => !target)`` — the singleton MPSs; {H1} and {VW}
        in the paper's case study)."""
        return [
            name
            for name in self.tree.basic_events
            if self.checker.check(
                Forall(Implies(Not(Atom(name)), Not(Atom(self.target))))
            )
        ]
