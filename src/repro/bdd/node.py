"""BDD node representation (Def. 5 of the paper).

A :class:`Node` is an immutable vertex of a reduced ordered binary decision
diagram.  Terminal nodes carry a Boolean label; non-terminal nodes carry a
variable *level* (an index into the owning manager's variable order) and two
distinct children ``low`` / ``high`` (the Shannon cofactors for the variable
set to 0 / 1 respectively).

Nodes are hash-consed by :class:`repro.bdd.manager.BDDManager`: structural
equality coincides with object identity, so nodes compare and hash by their
unique integer ``uid``.  Users never build nodes directly; they obtain them
from a manager.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Level assigned to terminal nodes.  It orders *after* every real variable
#: level so that the usual "smaller level is closer to the root" invariant
#: holds uniformly.
TERMINAL_LEVEL = 2**31


class Node:
    """A single (hash-consed) ROBDD node.

    Attributes:
        uid: Manager-unique integer identity; stable for the manager's life.
        level: Variable level (position in the manager order), or
            :data:`TERMINAL_LEVEL` for terminals.
        low: Child for "variable = 0" (``None`` for terminals).
        high: Child for "variable = 1" (``None`` for terminals).
        value: Boolean label of a terminal node (``None`` for non-terminals).
    """

    __slots__ = ("uid", "level", "low", "high", "value", "manager_id")

    def __init__(
        self,
        uid: int,
        level: int,
        low: Optional["Node"],
        high: Optional["Node"],
        value: Optional[bool],
        manager_id: int,
    ) -> None:
        self.uid = uid
        self.level = level
        self.low = low
        self.high = high
        self.value = value
        self.manager_id = manager_id

    @property
    def is_terminal(self) -> bool:
        """True for the ``0``/``1`` leaves."""
        return self.value is not None

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return f"<Terminal {int(bool(self.value))}>"
        return (
            f"<Node uid={self.uid} level={self.level} "
            f"low={self.low.uid} high={self.high.uid}>"
        )

    def iter_nodes(self) -> Iterator["Node"]:
        """Yield every node reachable from this one exactly once.

        Iterative depth-first traversal (BDDs for wide fault trees can be
        deeper than Python's default recursion limit allows).
        """
        seen = {self.uid}
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.is_terminal:
                continue
            for child in (node.low, node.high):
                if child.uid not in seen:
                    seen.add(child.uid)
                    stack.append(child)

    def count_nodes(self) -> int:
        """Number of distinct nodes in the DAG rooted here (terminals incl.)."""
        return sum(1 for _ in self.iter_nodes())
