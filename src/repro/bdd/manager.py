"""Complement-edge ROBDD kernel: integer handles, Apply, Restrict, Compose.

This is the computational substrate of the whole library (paper Sec. V-A),
rebuilt in the style of CUDD/BuDDy: nodes are integer indices into
manager-owned parallel arrays (:attr:`_level`, :attr:`_low`,
:attr:`_high`), and an *edge* is a tagged integer ``(index << 1) | c``
whose low bit ``c`` marks complementation.  Consequences:

* **one terminal** — the constant ``1`` lives at index 0; ``0`` is its
  complemented edge.  The classical "exactly two terminals" invariant
  becomes "exactly two terminal *edges*";
* **negation is free** — complementing a function flips the low bit of
  its handle.  No traversal, no memo table, no unique-table insertions
  (:meth:`BDDManager.negate`, counted in ``op_stats.negations``);
* **canonical form** — every *stored* high edge is regular
  (uncomplemented).  ``mk`` pushes a complemented high edge onto both
  children and returns a complemented handle instead, so each function
  has exactly one representation and identity tests keep working.

The manager still owns a totally ordered set of named variables (Def. 5
requires ``Vars`` to carry a total order ``<``) and guarantees the ROBDD
invariants on top of the complement-edge form:

* *ordered* — on every root-to-terminal path variables appear in strictly
  increasing level order (``mk`` enforces ``level < child levels``);
* *reduced* — no node has identical children (``mk`` short-circuits) and
  no two distinct indices share ``(level, low, high)`` (the
  open-addressed unique table).

The storage layer is *array-native*: the parallel node arrays are
contiguous ``array.array('q')`` buffers (``_level``, ``_low``,
``_high``, ``_refcount``), the unique table is an open-addressed hash
table over those buffers (power-of-two capacity, linear probing,
tombstone-free rebuild on GC), and the operation memo tables are lossy
direct-mapped computed tables with packed integer keys in the
CUDD tradition.  Because nodes are flat int64 buffers, bulk passes —
the multi-profile :meth:`BDDManager.probability_many` sweep, snapshot
compaction/validation, the unique-table bulk rehash — vectorise over
zero-copy numpy views when numpy is importable (``_nputil``), with a
pure-Python fallback keeping every feature available without it.

The public currency is the interned :class:`~repro.bdd.ref.Ref` handle;
all recursions below run on raw integer edges and only wrap at the API
boundary.  Because reduction is maintained incrementally by ``mk``, the
textbook ``Apply``+``Reduce`` pipeline referenced by the paper (Ben-Ari
Algs. 5.15 and 5.3) collapses into the memoised binary cores plus the
standard-triple-normalised :meth:`BDDManager.ite`.

Two memory-management facilities sit on top of the node store (both in
the CUDD/BuDDy tradition):

* **garbage collection** — refs are interned *weakly* and every node
  index carries an external reference count, decremented by a
  ``weakref.finalize`` hook when the last handle dies.  A mark-and-sweep
  :meth:`BDDManager.collect` reclaims every node unreachable from a live
  Ref into a free list that :meth:`_mk` reuses, so node indices are no
  longer append-only and long-lived sessions stay flat;
* **in-place dynamic reordering** — :meth:`BDDManager.swap` exchanges
  two adjacent levels by rewiring only the nodes on those levels (every
  pre-existing index keeps denoting the same Boolean function, so live
  Refs survive reordering untouched), and :meth:`BDDManager.sift_inplace`
  runs Rudell's sifting (ICCAD'93) on top of it.  Automatic triggers for
  both fire at :meth:`BDDManager.checkpoint` safe points.

The node store is also *portable*: :meth:`BDDManager.save_snapshot`
compacts the live parallel arrays plus named root edges into a JSON-safe
dict, and :meth:`BDDManager.load_snapshot` rebuilds a fresh manager from
one (re-validating every canonical-form invariant).  Snapshots carry no
memo tables — see the method docstrings and DESIGN.md for why.
"""

from __future__ import annotations

import hashlib
import itertools
import sys
import weakref
from array import array
from dataclasses import dataclass, fields
from math import nan
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import (
    ExecutionError,
    ManagerMismatchError,
    MissingWeightError,
    SnapshotError,
    SnapshotIntegrityError,
    VariableError,
)
from . import _nputil
from .ref import TERMINAL_LEVEL, Ref

#: The two terminal edges: index 0 is the stored ``1`` terminal.
_TRUE = 0
_FALSE = 1

#: Level sentinel marking a reclaimed (free-listed) node slot.
_FREE_LEVEL = -1

#: Constructions (or sweep iterations) between full governor checks.
#: An armed governor costs one decrement and compare per ``_mk``; the
#: full tick — live-node count, budget compares, amortised clock read —
#: runs every stride and credits the governor with this many steps.
#: Budget/deadline overshoot is bounded by one stride of work.
_GOV_STRIDE = 64


def _release_external(refcount: "array", index: int) -> None:
    """``weakref.finalize`` hook: the last Ref for an edge of ``index``
    died.  Deliberately a module function over the refcount buffer so the
    finalizer registry never pins the manager itself.  The buffer object
    is identity-stable for the manager's lifetime (``array.array`` grows
    in place), so hooks registered before any growth stay valid."""
    if refcount[index] > 0:
        refcount[index] -= 1

#: Opcodes for the packed-key binary operation cache.  Only AND and
#: XOR run a recursion; every other connective is an O(1) complement
#: rewrite of one of them (De Morgan and friends).
_OP_AND = 0
_OP_XOR = 1

#: Binary Boolean connectives supported by :meth:`BDDManager.apply`.
_OP_NAMES = ("and", "or", "xor", "xnor", "nand", "nor", "implies")

#: Weight profiles whose probability caches are retained (LRU beyond).
_PROB_PROFILE_LIMIT = 4

#: Bits reserved per tagged edge in packed computed-table keys.  2^44
#: edges = 2^43 stored nodes; at 32 bytes/node that is ~256 TiB of node
#: store, far beyond anything a single manager can hold, so the packing
#: never truncates in practice.
_EDGE_BITS = 44

#: Knuth/Fibonacci-style multipliers for the open-addressed tables.
_H1 = 0x9E3779B1
_H2 = 0x85EBCA6B

#: Unique-table sizing: power-of-two capacity, load factor kept <= 0.5.
_UT_MIN_CAPACITY = 1 << 10

#: Computed-table sizing (per op cache): direct-mapped and lossy, so a
#: full table evicts rather than grows — but while a cache keeps
#: missing, capacity doubles up to the max (CUDD's "reward" policy,
#: crudely: one doubling per capacity-many insertions).
_CACHE_MIN_BITS = 12
_CACHE_MAX_BITS = 20

#: Marker / version of the portable kernel snapshot format (see
#: :meth:`BDDManager.save_snapshot`).  Version 1 payloads carry plain
#: JSON-safe lists; version 2 payloads carry the same arrays as raw
#: little/big-endian int64 ``bytes`` (``binary=True``), which shard
#: workers adopt wholesale as buffers.  :meth:`BDDManager.load_snapshot`
#: reads both and rejects anything else.
SNAPSHOT_FORMAT = "repro-bdd-kernel"
SNAPSHOT_VERSION = 1
SNAPSHOT_VERSION_BINARY = 2


def snapshot_checksum(data: Mapping[str, object]) -> str:
    """Canonical sha256 content digest of a snapshot payload.

    Covers everything that determines the reconstructed kernel —
    version, variable order, the three node columns (raw bytes for
    version 2, decimal digits for version-1 lists, so the digest is
    endianness-independent where the payload is), and the named roots —
    and deliberately nothing else, so adding metadata keys to a snapshot
    file never invalidates existing checksums.  Non-canonical values
    (wrong types smuggled into a column) still hash deterministically
    via ``str``; they change the digest, which is exactly what a
    checksum should do with corruption.
    """
    h = hashlib.sha256()
    h.update(str(data.get("version")).encode())
    for name in data.get("variables") or ():
        h.update(b"\x00")
        h.update(str(name).encode())
    for column in ("levels", "lows", "highs"):
        value = data.get(column)
        h.update(b"\x01")
        if isinstance(value, (bytes, bytearray)):
            h.update(bytes(value))
        elif isinstance(value, array):
            h.update(value.tobytes())
        elif isinstance(value, (list, tuple)):
            for item in value:
                h.update(str(item).encode())
                h.update(b",")
        else:
            h.update(str(value).encode())
    roots = data.get("roots")
    if isinstance(roots, Mapping):
        for name in sorted(str(key) for key in roots):
            h.update(b"\x02")
            h.update(f"{name}={roots.get(name)}".encode())
    return h.hexdigest()


def _stamp_snapshot(payload: Dict[str, object]) -> Dict[str, object]:
    """Embed the content checksum into a freshly built snapshot dict."""
    payload["sha256"] = snapshot_checksum(payload)
    return payload


_manager_counter = itertools.count()


@dataclass
class OperationCacheStats:
    """Counters for the manager's memo tables and free negations.

    A *miss* is a recursive call that had to compute its result; a *hit*
    found it in the memo table.  Terminal short-circuits (e.g.
    ``and(0, x)``) never consult a cache and count as neither.
    ``negations`` counts O(1) complement-bit flips — the operation that
    used to be a cached recursive rebuild and is now free; it is kept
    separate from the hit/miss totals because no table is involved.  The
    counters only ever grow, so callers can snapshot/diff them to
    attribute work to a batch of queries.
    """

    apply_hits: int = 0
    apply_misses: int = 0
    ite_hits: int = 0
    ite_misses: int = 0
    restrict_hits: int = 0
    restrict_misses: int = 0
    #: Substitution (``BDDManager.compose``) memo table; the incremental
    #: translator's splice path is built on this primitive, so sweeps of
    #: many variants over one base tree show up as compose hits.
    compose_hits: int = 0
    compose_misses: int = 0
    #: Weighted-evaluation cache (``BDDManager.probability``): a hit is a
    #: traversal cut off at an already-valued node, a miss is one node
    #: whose probability had to be computed.
    prob_hits: int = 0
    prob_misses: int = 0
    #: O(1) complement flips (never a lookup, never an insertion).
    negations: int = 0
    #: Open-addressed unique-table counters: ``ut_collisions`` counts
    #: probe steps beyond the home slot on inserts (probe-length sum),
    #: ``ut_resizes`` counts capacity doublings and GC rebuilds.  They
    #: describe the node store, not a memo table, so they stay outside
    #: the ``hits``/``misses`` totals.
    ut_collisions: int = 0
    ut_resizes: int = 0
    #: Computed-table counters: ``cache_evictions`` counts entries
    #: overwritten by a colliding insert (the tables are lossy and
    #: direct-mapped), ``cache_resizes`` counts capacity doublings.
    cache_evictions: int = 0
    cache_resizes: int = 0

    @property
    def hits(self) -> int:
        """Total memo-table hits across all operations."""
        return (
            self.apply_hits
            + self.ite_hits
            + self.restrict_hits
            + self.compose_hits
            + self.prob_hits
        )

    @property
    def misses(self) -> int:
        """Total memo-table misses across all operations."""
        return (
            self.apply_misses
            + self.ite_misses
            + self.restrict_misses
            + self.compose_misses
            + self.prob_misses
        )

    @property
    def hit_ratio(self) -> float:
        """``hits / (hits + misses)``, or 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (per-op counters plus the totals)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["hits"] = self.hits
        data["misses"] = self.misses
        return data

    def delta(self, earlier: "OperationCacheStats") -> Dict[str, int]:
        """Counter increments since ``earlier`` (an older snapshot view)."""
        return {
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        }

    def copy(self) -> "OperationCacheStats":
        return OperationCacheStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )


class _OpCache:
    """One lossy, direct-mapped computed table (CUDD style).

    ``keys``/``vals`` are parallel lists of power-of-two length; an
    entry's slot is a caller-supplied multiplicative hash of the operands
    masked to the table, and its key is the operands packed into one
    integer (``_EDGE_BITS`` bits per edge), so a hit is two list reads
    and an int compare — no tuple allocation, no probing.  Colliding
    inserts simply overwrite (``cache_evictions``): a computed table
    trades completeness for constant-time, constant-memory operation,
    and a dropped entry only ever costs a recomputation.  Sustained
    insert pressure doubles the capacity up to ``_CACHE_MAX_BITS``
    (``cache_resizes``); growth drops the contents rather than rehash —
    slots are derived from the caller's unmasked hash, and the table is
    lossy anyway.  :meth:`clear` keeps the learned capacity.
    """

    __slots__ = ("keys", "vals", "mask", "occupied", "inserts")

    def __init__(self, bits: int = _CACHE_MIN_BITS) -> None:
        size = 1 << bits
        self.keys: List[Optional[int]] = [None] * size
        self.vals: List[int] = [0] * size
        self.mask = size - 1
        self.occupied = 0
        self.inserts = 0

    def __len__(self) -> int:
        return self.occupied

    def put(
        self, stats: OperationCacheStats, h: int, key: int, value: int
    ) -> None:
        """Store ``key -> value`` at the slot of unmasked hash ``h``."""
        self.inserts += 1
        keys = self.keys
        slot = h & self.mask
        prior = keys[slot]
        if prior is None:
            self.occupied += 1
        elif prior != key:
            stats.cache_evictions += 1
        keys[slot] = key
        self.vals[slot] = value
        if self.inserts > len(keys) and len(keys) < (1 << _CACHE_MAX_BITS):
            size = len(keys) * 2
            self.keys = [None] * size
            self.vals = [0] * size
            self.mask = size - 1
            self.occupied = 0
            self.inserts = 0
            stats.cache_resizes += 1

    def clear(self) -> None:
        size = len(self.keys)
        self.keys = [None] * size
        self.vals = [0] * size
        self.occupied = 0
        self.inserts = 0


class BDDManager:
    """Factory and owner of complement-edge ROBDDs over a named, totally
    ordered variable set.

    Args:
        variables: Initial variable names, in order (level 0 first).

    Example:
        >>> m = BDDManager(["a", "b"])
        >>> f = m.or_(m.var("a"), m.var("b"))
        >>> m.evaluate(f, {"a": False, "b": True})
        True
    """

    def __init__(self, variables: Iterable[str] = ()) -> None:
        self._id = next(_manager_counter)
        self._order: List[str] = []
        self._levels: Dict[str, int] = {}
        # Parallel node arrays: contiguous, growable int64 buffers.
        # Index 0 is the `1` terminal; its child slots are unused
        # placeholders.  Being real buffers (not Python lists), bulk
        # passes can view them zero-copy via numpy and snapshots can
        # serialise them with one memcpy.
        self._level = array("q", [TERMINAL_LEVEL])
        self._low = array("q", [0])
        self._high = array("q", [0])
        #: External reference counts, node index -> number of live Refs
        #: whose edge points at that index (both polarities included).
        #: Parallel to the node arrays; reclaimed slots always hold 0.
        self._refcount = array("q", [0])
        # Open-addressed unique table over the node arrays: slots hold a
        # node index or -1 (empty); the key of an occupied slot is the
        # node's (level, low, high) read straight from the arrays.
        # Power-of-two capacity, linear probing, load kept <= 1/2;
        # deletes backward-shift, GC rebuilds tombstone-free.
        self._ut_slots = array("q", [-1]) * _UT_MIN_CAPACITY
        self._ut_mask = _UT_MIN_CAPACITY - 1
        self._ut_count = 0
        self._ut_max_probe = 0
        # Computed tables (lossy, direct-mapped, packed int keys).  Kept
        # per-operation so clearing one kind of cache (e.g. after
        # reordering) does not touch the others.
        self._apply_cache = _OpCache(_CACHE_MIN_BITS + 2)
        self._ite_cache = _OpCache(_CACHE_MIN_BITS + 2)
        self._restrict_cache = _OpCache()
        self._compose_cache = _OpCache()
        self._exists_cache = _OpCache()
        # Quantified level sets are interned to small ints so the exists
        # computed table can pack (edge, set) into one integer key.
        self._exists_sets: Dict[FrozenSet[int], int] = {}
        self._support_cache: Dict[int, FrozenSet[int]] = {}
        # Weighted-evaluation (probability) caches: per weight *profile*
        # (sorted name->weight tuple), a dense float64 array parallel to
        # the node store mapping *regular* node index -> P[node = 1]
        # (NaN marks "not valued yet").  Keyed on the regular index
        # because P(~f) = 1 - P(f) is free on complement edges, so a
        # function and its negation share one entry.  A bounded LRU of
        # profiles keeps mixed batteries (base profile interleaved with
        # per-query settings) from thrashing each other's entries.  All
        # of it participates in the GC/reordering lifecycle via
        # clear_caches (reclaimed indices may be reused; swaps allocate
        # fresh functions into old slots).
        self._prob_caches: Dict[Tuple[Tuple[str, float], ...], array] = {}
        # Fast paths for the hot case of one mapping reused call after
        # call: skip rebuilding the sorted profile key when the weights
        # compare equal to the previous call's (a dict compare in C),
        # and memoise the level->weight projection of the last profile
        # (valid until a swap remaps levels — reset in clear_caches —
        # or a declare appends variables, hence the order-length key).
        self._prob_last_weights: Optional[Dict[str, float]] = None
        self._prob_last_profile: Tuple[Tuple[str, float], ...] = ()
        self._prob_lw_key: Optional[Tuple[Tuple[Tuple[str, float], ...], int]] = None
        self._prob_lw: Dict[int, float] = {}
        # Ref interning: one Ref object per live edge, so identity
        # comparison (`u is manager.false`) works across the public API.
        # The interning is *weak* — when user code drops the last handle
        # for an edge the Ref dies, its finalizer decrements the node's
        # external refcount, and the node becomes eligible for collect().
        self._refs: "weakref.WeakValueDictionary[int, Ref]" = (
            weakref.WeakValueDictionary()
        )
        #: Reclaimed node indices available for reuse by ``_mk``.
        self._free: List[int] = []
        self.true = self._wrap(_TRUE)
        self.false = self._wrap(_FALSE)
        #: High-water mark of *live* stored nodes (stored minus free).
        self._peak_nodes = 1
        #: Hit/miss counters for the memo tables above (monotone).
        self.op_stats = OperationCacheStats()
        # Garbage-collection state (off until configure_memory enables
        # the automatic trigger; collect() always works on demand).
        self._gc_enabled = False
        self._gc_min_trigger = 2048
        self._gc_growth = 2.0
        self._gc_trigger = self._gc_min_trigger
        self._gc_runs = 0
        self._reclaimed = 0
        # Dynamic-reordering state.
        self._auto_reorder = False
        self._reorder_min_trigger = 4096
        self._reorder_trigger = self._reorder_min_trigger
        self._reorder_max_growth = 1.2
        self._auto_reorders = 0
        self._sift_runs = 0
        self._swaps = 0
        # Resource governance (repro.runtime.limits.Governor, or any
        # object with the same tick/check_deadline duck type).  None
        # means ungoverned: the kernel's safe points reduce to one
        # ``is not None`` branch.
        self._governor = None
        self._gov_countdown = 1
        self._gov_stride = _GOV_STRIDE
        for name in variables:
            self.declare(name)

    # ------------------------------------------------------------------
    # Handle plumbing
    # ------------------------------------------------------------------

    def _wrap(self, edge: int) -> Ref:
        """The interned :class:`Ref` for ``edge``.

        Interning a fresh handle pins the underlying node for the garbage
        collector: the node's external refcount goes up here and comes
        back down from the Ref's finalizer when the handle dies.
        """
        ref = self._refs.get(edge)
        if ref is None:
            ref = Ref(self, edge)
            self._refs[edge] = ref
            refcount = self._refcount
            index = edge >> 1
            refcount[index] += 1
            weakref.finalize(ref, _release_external, refcount, index)
        return ref

    def _unwrap(self, ref: Ref) -> int:
        """Edge of ``ref``, verifying ownership."""
        try:
            if ref.manager is self:
                return ref.edge
        except AttributeError:
            raise TypeError(f"expected a BDD Ref, got {ref!r}") from None
        raise ManagerMismatchError(
            "combining nodes that belong to different BDD managers"
        )

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def declare(self, *names: str) -> None:
        """Append ``names`` (in the given order) to the variable order.

        Raises:
            VariableError: If a name is already declared or empty.
        """
        for name in names:
            if not name:
                raise VariableError("variable names must be non-empty")
            if name in self._levels:
                raise VariableError(f"variable {name!r} already declared")
            self._levels[name] = len(self._order)
            self._order.append(name)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The current variable order, level 0 first."""
        return tuple(self._order)

    def level_of(self, name: str) -> int:
        """Level (order position) of variable ``name``."""
        try:
            return self._levels[name]
        except KeyError:
            raise VariableError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Variable name at ``level``."""
        try:
            return self._order[level]
        except IndexError:
            raise VariableError(f"no variable at level {level}") from None

    def var(self, name: str) -> Ref:
        """Elementary BDD ``B(v)`` with ``Low = 0`` and ``High = 1``
        (the building block of Def. 6)."""
        return self._wrap(self._mk(self.level_of(name), _FALSE, _TRUE))

    def nvar(self, name: str) -> Ref:
        """Elementary negated BDD for ``not name`` (one bit-flip away)."""
        return self._wrap(self._mk(self.level_of(name), _FALSE, _TRUE) ^ 1)

    def constant(self, value: bool) -> Ref:
        """The ``0`` or ``1`` terminal edge."""
        return self.true if value else self.false

    # ------------------------------------------------------------------
    # Open-addressed unique table
    # ------------------------------------------------------------------
    #
    # The table is an ``array('q')`` of slots holding a node index or -1
    # (empty); an occupied slot's key is the node's (level, low, high)
    # read straight from the parallel arrays, so the table itself stores
    # no keys and rebuilding it is pure recomputation.  Capacity is a
    # power of two, probing is linear, and the load factor stays <= 1/2
    # (growth doubles).  Deletion backward-shifts the cluster (Knuth
    # 6.4 R) so the table never accumulates tombstones; GC does a full
    # tombstone-free rebuild sized to the surviving population instead.

    def _ut_find(self, level: int, low: int, high: int) -> int:
        """Index of the node with this key, or a negative value on miss
        (``-slot - 1`` of the first empty slot probed; node indices in
        the table are always >= 1, so the encodings cannot collide)."""
        slots = self._ut_slots
        mask = self._ut_mask
        lv_a, lo_a, hi_a = self._level, self._low, self._high
        slot = (level * _H1 + low * _H2 + high) & mask
        while True:
            idx = slots[slot]
            if idx < 0:
                return -slot - 1
            if lv_a[idx] == level and lo_a[idx] == low and hi_a[idx] == high:
                return idx
            slot = (slot + 1) & mask

    def _ut_insert(self, level: int, low: int, high: int, index: int) -> None:
        """Insert ``index`` under its key (which the node arrays must
        already hold).  The key must not be present."""
        if (self._ut_count + 1) * 2 > len(self._ut_slots):
            self._ut_grow()
        slots = self._ut_slots
        mask = self._ut_mask
        slot = (level * _H1 + low * _H2 + high) & mask
        probe = 0
        while slots[slot] >= 0:
            probe += 1
            slot = (slot + 1) & mask
        slots[slot] = index
        self._ut_count += 1
        if probe:
            self.op_stats.ut_collisions += probe
            if probe > self._ut_max_probe:
                self._ut_max_probe = probe

    def _ut_delete(self, level: int, low: int, high: int) -> None:
        """Remove the entry with this key (KeyError if absent), closing
        the probe cluster by backward shifting."""
        slots = self._ut_slots
        mask = self._ut_mask
        lv_a, lo_a, hi_a = self._level, self._low, self._high
        slot = (level * _H1 + low * _H2 + high) & mask
        while True:
            idx = slots[slot]
            if idx < 0:
                raise KeyError((level, low, high))
            if lv_a[idx] == level and lo_a[idx] == low and hi_a[idx] == high:
                break
            slot = (slot + 1) & mask
        self._ut_count -= 1
        j = slot
        k = slot
        while True:
            slots[j] = -1
            while True:
                k = (k + 1) & mask
                idx = slots[k]
                if idx < 0:
                    return
                home = (lv_a[idx] * _H1 + lo_a[idx] * _H2 + hi_a[idx]) & mask
                # An entry may fill the hole iff its home slot does not
                # lie (cyclically) strictly between the hole and it.
                if (k - home) & mask >= (k - j) & mask:
                    slots[j] = idx
                    j = k
                    break

    def _ut_grow(self) -> None:
        """Double the capacity, rehashing the *current slot contents*.

        Re-placing what the slots hold (rather than sweeping the store)
        keeps growth safe mid-:meth:`_swap_adjacent`, where the table
        deliberately holds only part of the live store for a moment.
        """
        old = self._ut_slots
        size = len(old) * 2
        slots = array("q", [-1]) * size
        mask = size - 1
        lv_a, lo_a, hi_a = self._level, self._low, self._high
        for idx in old:
            if idx < 0:
                continue
            slot = (lv_a[idx] * _H1 + lo_a[idx] * _H2 + hi_a[idx]) & mask
            while slots[slot] >= 0:
                slot = (slot + 1) & mask
            slots[slot] = idx
        self._ut_slots = slots
        self._ut_mask = mask
        self.op_stats.ut_resizes += 1

    def _ut_rebuild(self) -> None:
        """Tombstone-free rebuild from the live store, sized to the
        surviving population (used by :meth:`collect` and snapshot
        adoption).  With numpy available the per-node home slots are
        precomputed in one vectorised pass over the array buffers."""
        level = self._level
        nslots = len(level)
        live = nslots - len(self._free) - 1
        capacity = _UT_MIN_CAPACITY
        while capacity <= 2 * live:
            capacity <<= 1
        slots = array("q", [-1]) * capacity
        mask = capacity - 1
        np_mod = _nputil.np
        if np_mod is not None and nslots > 2048:
            lv = np_mod.frombuffer(self._level, dtype=np_mod.int64)
            lo = np_mod.frombuffer(self._low, dtype=np_mod.int64)
            hi = np_mod.frombuffer(self._high, dtype=np_mod.int64)
            # int64 products wrap mod 2^64, which preserves the low
            # ``mask`` bits — identical to the arbitrary-precision slot.
            homes = ((lv * _H1 + lo * _H2 + hi) & mask).tolist()
        else:
            lo_a, hi_a = self._low, self._high
            homes = None
        collisions = 0
        max_probe = self._ut_max_probe
        for idx in range(1, nslots):
            if level[idx] == _FREE_LEVEL:
                continue
            if homes is not None:
                slot = homes[idx]
            else:
                slot = (level[idx] * _H1 + lo_a[idx] * _H2 + hi_a[idx]) & mask
            probe = 0
            while slots[slot] >= 0:
                probe += 1
                slot = (slot + 1) & mask
            slots[slot] = idx
            if probe:
                collisions += probe
                if probe > max_probe:
                    max_probe = probe
        self._ut_slots = slots
        self._ut_mask = mask
        self._ut_count = live
        self._ut_max_probe = max_probe
        self.op_stats.ut_collisions += collisions
        self.op_stats.ut_resizes += 1

    # ------------------------------------------------------------------
    # Resource governance
    # ------------------------------------------------------------------

    @property
    def governor(self):
        """The installed :class:`~repro.runtime.limits.Governor`
        (``None`` = ungoverned).  Install one around a unit of work and
        remove it after; the kernel consults it at cheap safe points —
        :meth:`_mk`, the entries of :meth:`ite` / :meth:`compose`, the
        probability sweeps, and between :meth:`sift_inplace` swaps — and
        a tripped budget surfaces as a structured
        :class:`~repro.errors.ResourceLimitError` /
        :class:`~repro.errors.QueryDeadlineError` with the manager left
        consistent (:meth:`check_invariants` passes)."""
        return self._governor

    @governor.setter
    def governor(self, governor) -> None:
        self._governor = governor
        # Deadline/step governors amortise the full check over
        # _GOV_STRIDE allocations (the armed cost per _mk is a
        # decrement and a compare); a node budget wants allocation
        # precision, so it checks every allocation and overshoots by
        # at most one node.  The first governed _mk always runs a full
        # check either way.
        self._gov_stride = (
            1
            if governor is not None
            and getattr(governor, "node_budget", None) is not None
            else _GOV_STRIDE
        )
        self._gov_countdown = 1

    def _governed_abort(self) -> None:
        """Restore cache consistency before a governor trip propagates.

        The node store itself is always consistent at a safe point (the
        tick runs *before* any mutation in :meth:`_mk`, and between
        whole swaps while sifting), but an aborted operation may leave
        memo-table entries for intermediate results whose nodes no Ref
        pins — dropping the caches makes those nodes ordinary GC fodder
        and guarantees no stale entry survives the abort."""
        self.clear_caches()

    def _governed_point(self, live_nodes: int = 0, weight: int = 1) -> None:
        """One governed safe point: tick the installed governor (if
        any), running the abort protocol before a trip propagates."""
        governor = self._governor
        if governor is not None:
            try:
                governor.tick(live_nodes, weight)
            except ExecutionError:
                self._governed_abort()
                raise

    def _governed_mk_point(self) -> None:
        """The strided `_mk` safe point: full check, stride credit.

        With a node budget the stride is 1 (overshoot at most one
        node); otherwise deadline overshoot is bounded by one stride of
        allocations — well under a millisecond of extra work."""
        stride = self._gov_stride
        self._gov_countdown = stride
        try:
            self._governor.tick(
                len(self._level) - len(self._free), stride
            )
        except ExecutionError:
            self._governed_abort()
            raise

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """The unique reduced edge for ``(level, low, high)``.

        Applies both reduction rules (identical children collapse;
        structurally equal nodes are shared via the unique table) and the
        complement-edge canonical form: a complemented high edge is pushed
        onto both children, and the complement bit returns on the handle.

        Raises:
            VariableError: If the node would violate the variable order.
        """
        if low == high:
            return low
        c = high & 1
        if c:
            # Canonical form: stored high edges are regular.
            low ^= 1
            high ^= 1
        index = self._ut_find(level, low, high)
        if index < 0:
            # Governed safe point *before* any mutation, on the
            # allocation path only: node budgets move exactly when
            # nodes are allocated, and long-running apply recursions
            # allocate steadily, so deadline coverage rides along.
            # Cache-hit constructions pay one `is not None` branch.
            # A budget trip here leaves the store as the caller found
            # it.  Full checks are strided (every _GOV_STRIDE
            # allocations), bounding overshoot by one stride.
            if self._governor is not None:
                countdown = self._gov_countdown - 1
                self._gov_countdown = countdown
                if countdown <= 0:
                    self._governed_mk_point()
            if (
                level >= self._level[low >> 1]
                or level >= self._level[high >> 1]
            ):
                raise VariableError(
                    f"node at level {level} must precede its children "
                    f"(levels {self._level[low >> 1]}, "
                    f"{self._level[high >> 1]})"
                )
            index = self._alloc_slot(level, low, high)
            self._ut_insert(level, low, high, index)
        return (index << 1) | c

    def _alloc_slot(self, level: int, low: int, high: int) -> int:
        """Allocate one node slot, refilling a hole reclaimed by
        :meth:`collect` before growing the parallel arrays (indices are
        no longer append-only).  Maintains the peak-live accounting;
        unique-table insertion is the caller's job."""
        free = self._free
        if free:
            index = free.pop()
            self._level[index] = level
            self._low[index] = low
            self._high[index] = high
        else:
            index = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._refcount.append(0)
        live = len(self._level) - len(free)
        if live > self._peak_nodes:
            self._peak_nodes = live
        return index

    def mk(self, level: int, low: Ref, high: Ref) -> Ref:
        """Public ``mk``: unique reduced node over :class:`Ref` handles."""
        return self._wrap(self._mk(level, self._unwrap(low), self._unwrap(high)))

    # ------------------------------------------------------------------
    # Core recursions (raw integer edges)
    # ------------------------------------------------------------------

    def _top_key(self, edge: int) -> Tuple[int, int]:
        """Sort key (level, index) for standard-triple normalisation."""
        index = edge >> 1
        return (self._level[index], index)

    def _and_e(self, u: int, v: int) -> int:
        """Conjunction core (the only binary AND-family recursion)."""
        # Terminal / absorption short-cuts keep the cache small.
        if u == v:
            return u
        if u ^ v == 1:  # f and not f
            return _FALSE
        if u == _TRUE:
            return v
        if v == _TRUE:
            return u
        if u == _FALSE or v == _FALSE:
            return _FALSE
        if u > v:  # commutative: one cache entry per unordered pair
            u, v = v, u
        cache = self._apply_cache
        h = u * _H1 + v * _H2
        slot = h & cache.mask
        key = ((u << _EDGE_BITS) | v) << 1  # | _OP_AND (0)
        if cache.keys[slot] == key:
            self.op_stats.apply_hits += 1
            return cache.vals[slot]
        self.op_stats.apply_misses += 1

        level = self._level
        ui, vi = u >> 1, v >> 1
        lu, lv = level[ui], level[vi]
        top = lu if lu < lv else lv
        if lu == top:
            uc = u & 1
            u0, u1 = self._low[ui] ^ uc, self._high[ui] ^ uc
        else:
            u0 = u1 = u
        if lv == top:
            vc = v & 1
            v0, v1 = self._low[vi] ^ vc, self._high[vi] ^ vc
        else:
            v0 = v1 = v
        result = self._mk(top, self._and_e(u0, v0), self._and_e(u1, v1))
        cache.put(self.op_stats, h, key, result)
        return result

    def _xor_e(self, u: int, v: int) -> int:
        """Exclusive-or core; complements of both operands normalise out."""
        # xor(~a, b) == xor(a, ~b) == ~xor(a, b): strip the bits up front.
        out = (u ^ v) & 1
        u &= -2
        v &= -2
        if u == v:
            return _FALSE ^ out
        if u == _TRUE:  # a stripped terminal is the 1 constant
            return v ^ 1 ^ out
        if v == _TRUE:
            return u ^ 1 ^ out
        if u > v:
            u, v = v, u
        cache = self._apply_cache
        h = u * _H1 + v * _H2 + _OP_XOR
        slot = h & cache.mask
        key = (((u << _EDGE_BITS) | v) << 1) | _OP_XOR
        if cache.keys[slot] == key:
            self.op_stats.apply_hits += 1
            return cache.vals[slot] ^ out
        self.op_stats.apply_misses += 1

        level = self._level
        ui, vi = u >> 1, v >> 1
        lu, lv = level[ui], level[vi]
        top = lu if lu < lv else lv
        if lu == top:
            u0, u1 = self._low[ui], self._high[ui]
        else:
            u0 = u1 = u
        if lv == top:
            v0, v1 = self._low[vi], self._high[vi]
        else:
            v0 = v1 = v
        result = self._mk(top, self._xor_e(u0, v0), self._xor_e(u1, v1))
        cache.put(self.op_stats, h, key, result)
        return result ^ out

    def _or_e(self, u: int, v: int) -> int:
        """Disjunction by De Morgan over the AND core (no extra table)."""
        return self._and_e(u ^ 1, v ^ 1) ^ 1

    def _ite_e(self, f: int, g: int, h: int) -> int:
        """If-then-else with Brace/Rudell/Bryant standard-triple
        normalisation over complement edges."""
        # Terminal and absorption rules keep the recursion shallow.
        if f == _TRUE:
            return g
        if f == _FALSE:
            return h
        if g == h:
            return g
        if g == f:  # ite(f, f, h) == ite(f, 1, h)
            g = _TRUE
        elif g == f ^ 1:  # ite(f, ~f, h) == ite(f, 0, h)
            g = _FALSE
        if h == f:  # ite(f, g, f) == ite(f, g, 0)
            h = _FALSE
        elif h == f ^ 1:  # ite(f, g, ~f) == ite(f, g, 1)
            h = _TRUE
        if g == h:
            return g
        if g == _TRUE and h == _FALSE:
            return f
        if g == _FALSE and h == _TRUE:
            return f ^ 1

        # Standard triples: rewrite equivalent calls to one representative
        # so e.g. or(f, h) and or(h, f) share a cache line.
        if g == _TRUE:  # or(f, h) == or(h, f)
            if self._top_key(h) < self._top_key(f):
                f, h = h, f
        elif h == _FALSE:  # and(f, g) == and(g, f)
            if self._top_key(g) < self._top_key(f):
                f, g = g, f
        elif g == _FALSE:  # ite(f, 0, h) == ite(~h, 0, ~f)
            if self._top_key(h) < self._top_key(f):
                f, h = h ^ 1, f ^ 1
        elif h == _TRUE:  # ite(f, g, 1) == ite(~g, ~f, 1)
            if self._top_key(g) < self._top_key(f):
                f, g = g ^ 1, f ^ 1

        # Canonical complement form: regular condition, regular then-branch.
        if f & 1:  # ite(~f, g, h) == ite(f, h, g)
            f ^= 1
            g, h = h, g
        out = g & 1
        if out:  # ite(f, ~g, h) == ~ite(f, g, ~h)
            g ^= 1
            h ^= 1

        cache = self._ite_cache
        ch = f * _H1 + g * _H2 + h
        slot = ch & cache.mask
        key = (((f << _EDGE_BITS) | g) << _EDGE_BITS) | h
        if cache.keys[slot] == key:
            self.op_stats.ite_hits += 1
            return cache.vals[slot] ^ out
        self.op_stats.ite_misses += 1

        level = self._level
        fi, gi, hi = f >> 1, g >> 1, h >> 1
        top = min(level[fi], level[gi], level[hi])
        if level[fi] == top:
            f0, f1 = self._low[fi], self._high[fi]  # f is regular here
        else:
            f0 = f1 = f
        if level[gi] == top:
            g0, g1 = self._low[gi], self._high[gi]  # g is regular here
        else:
            g0 = g1 = g
        if level[hi] == top:
            hc = h & 1
            h0, h1 = self._low[hi] ^ hc, self._high[hi] ^ hc
        else:
            h0 = h1 = h
        result = self._mk(
            top, self._ite_e(f0, g0, h0), self._ite_e(f1, g1, h1)
        )
        cache.put(self.op_stats, ch, key, result)
        return result ^ out

    # ------------------------------------------------------------------
    # Boolean combinators (public surface)
    # ------------------------------------------------------------------

    def apply(self, op: str, u: Ref, v: Ref) -> Ref:
        """Ben-Ari's ``Apply``; result is reduced by construction.

        Only ``and`` and ``xor`` run a recursion; the other connectives
        are O(1) complement rewrites of those two cores, which is the
        complement-edge kernel's structural win over the old per-operator
        recursions.

        Args:
            op: One of ``and or xor xnor nand nor implies``.
            u: Left operand.
            v: Right operand.
        """
        a = self._unwrap(u)
        b = self._unwrap(v)
        if op == "and":
            return self._wrap(self._and_e(a, b))
        if op == "or":
            return self._wrap(self._or_e(a, b))
        if op == "xor":
            return self._wrap(self._xor_e(a, b))
        if op == "xnor":
            return self._wrap(self._xor_e(a, b) ^ 1)
        if op == "nand":
            return self._wrap(self._and_e(a, b) ^ 1)
        if op == "nor":
            return self._wrap(self._or_e(a, b) ^ 1)
        if op == "implies":
            return self._wrap(self._and_e(a, b ^ 1) ^ 1)
        raise ValueError(f"unknown BDD operator {op!r}")

    def and_(self, u: Ref, v: Ref) -> Ref:
        """Conjunction of two BDDs."""
        return self._wrap(self._and_e(self._unwrap(u), self._unwrap(v)))

    def or_(self, u: Ref, v: Ref) -> Ref:
        """Disjunction of two BDDs."""
        return self._wrap(self._or_e(self._unwrap(u), self._unwrap(v)))

    def xor(self, u: Ref, v: Ref) -> Ref:
        """Exclusive or of two BDDs."""
        return self._wrap(self._xor_e(self._unwrap(u), self._unwrap(v)))

    def implies(self, u: Ref, v: Ref) -> Ref:
        """Implication ``u => v`` (``not (u and not v)``)."""
        return self._wrap(
            self._and_e(self._unwrap(u), self._unwrap(v) ^ 1) ^ 1
        )

    def equiv(self, u: Ref, v: Ref) -> Ref:
        """Bi-implication ``u <=> v``."""
        return self._wrap(self._xor_e(self._unwrap(u), self._unwrap(v)) ^ 1)

    def conjoin(self, nodes: Iterable[Ref]) -> Ref:
        """AND of arbitrarily many BDDs (empty conjunction is ``1``)."""
        result = _TRUE
        for node in nodes:
            result = self._and_e(result, self._unwrap(node))
        return self._wrap(result)

    def disjoin(self, nodes: Iterable[Ref]) -> Ref:
        """OR of arbitrarily many BDDs (empty disjunction is ``0``).

        Folded through De Morgan: the accumulator holds the complement of
        the disjunction so far, one AND per operand, one final bit-flip.
        """
        acc = _TRUE
        for node in nodes:
            acc = self._and_e(acc, self._unwrap(node) ^ 1)
        return self._wrap(acc ^ 1)

    def negate(self, u: Ref) -> Ref:
        """Complement a BDD: flip the handle's complement bit.

        O(1) — no traversal, no cache lookup, and crucially **no
        unique-table insertions**: negating never grows the node store
        (the old pointer-linked kernel rebuilt the whole DAG).  The flip
        count is tracked in ``op_stats.negations``.
        """
        edge = self._unwrap(u)
        self.op_stats.negations += 1
        return self._wrap(edge ^ 1)

    def ite(self, cond: Ref, then: Ref, other: Ref) -> Ref:
        """If-then-else ``(cond and then) or (not cond and other)`` as a
        *ternary apply*.

        A single memoised recursion over the three operands (Brace,
        Rudell & Bryant's ``ITE``) with standard-triple normalisation:
        the condition and then-branch of every cached triple are regular
        edges, and commuting forms (``or``, ``and`` expressed as ITE) are
        rewritten to one representative before the lookup.
        """
        self._governed_point()
        return self._wrap(
            self._ite_e(
                self._unwrap(cond), self._unwrap(then), self._unwrap(other)
            )
        )

    def threshold(self, operands: Sequence[Ref], k: int) -> Ref:
        """BDD for "at least ``k`` of ``operands`` hold".

        Implements the VOT(k/N) semantics of Def. 2 / Def. 6 by dynamic
        programming over partial counts instead of the exponential
        disjunction-of-subsets expansion, which it is equivalent to.
        """
        n = len(operands)
        if k <= 0:
            return self.true
        if k > n:
            return self.false
        edges = [self._unwrap(operand) for operand in operands]
        # rows[j] = edge for "at least j of the operands seen so far
        # hold", folded right-to-left.
        rows: List[int] = [_TRUE] + [_FALSE] * k
        for operand in reversed(edges):
            new_rows = [_TRUE]
            for j in range(1, k + 1):
                new_rows.append(self._ite_e(operand, rows[j - 1], rows[j]))
            rows = new_rows
        return self._wrap(rows[k])

    # ------------------------------------------------------------------
    # Restrict / Compose / Rename
    # ------------------------------------------------------------------

    def restrict(self, u: Ref, name: str, value: bool) -> Ref:
        """Ben-Ari's ``Restrict``: fix variable ``name`` to ``value``.

        This implements the BFL evidence operator ``phi[e -> value]``
        (Algorithm 1).
        """
        return self._wrap(
            self._restrict_e(self._unwrap(u), self.level_of(name), int(value))
        )

    def _restrict_e(self, u: int, level: int, value: int) -> int:
        # Restriction commutes with complement; cache on the regular edge.
        c = u & 1
        u ^= c
        if self._level[u >> 1] > level:
            # Terminals and nodes below `level` cannot mention the variable.
            return u ^ c
        cache = self._restrict_cache
        h = u * _H1 + level * _H2 + value
        slot = h & cache.mask
        # Levels are < TERMINAL_LEVEL = 2^31, so 33 bits hold (level,
        # value) and the edge sits above them.
        key = (u << 33) | (level << 1) | value
        if cache.keys[slot] == key:
            self.op_stats.restrict_hits += 1
            return cache.vals[slot] ^ c
        self.op_stats.restrict_misses += 1
        index = u >> 1
        if self._level[index] == level:
            result = self._high[index] if value else self._low[index]
        else:
            result = self._mk(
                self._level[index],
                self._restrict_e(self._low[index], level, value),
                self._restrict_e(self._high[index], level, value),
            )
        cache.put(self.op_stats, h, key, result)
        return result ^ c

    def restrict_many(self, u: Ref, assignment: Mapping[str, bool]) -> Ref:
        """Restrict several variables at once."""
        edge = self._unwrap(u)
        for name, value in assignment.items():
            edge = self._restrict_e(edge, self.level_of(name), int(value))
        return self._wrap(edge)

    def compose(self, u: Ref, name: str, g: Ref) -> Ref:
        """Substitute BDD ``g`` for variable ``name`` in ``u``
        (Shannon expansion: ``ite(g, u[name:=1], u[name:=0])``).

        Runs a dedicated single-pass memoised recursion rather than the
        restrict/restrict/ITE expansion, so repeated substitutions at one
        site (the incremental translator's variant-splice pattern) are a
        cache walk after the first call.  The memo table participates in
        the GC/reordering lifecycle via :meth:`clear_caches`, which makes
        the primitive safe to use across :meth:`checkpoint` boundaries.
        """
        self._governed_point()
        return self._wrap(
            self._compose_e(
                self._unwrap(u), self.level_of(name), self._unwrap(g)
            )
        )

    def _compose_e(self, u: int, level: int, g: int) -> int:
        # Substitution commutes with complement on the host function
        # (compose(~f, x, g) == ~compose(f, x, g)); cache on the regular
        # edge so a function and its negation share entries.  ``g``'s
        # complement bit stays in the key — it changes the result.
        c = u & 1
        u ^= c
        index = u >> 1
        if self._level[index] > level:
            # Terminals and nodes ordered below `level` cannot mention
            # the substituted variable.
            return u ^ c
        if level not in self._support_levels(u):
            # Subgraphs independent of the substituted variable pass
            # through untouched.  The support sets are memoised globally
            # (and survive across compose calls), so a variant sweep
            # substituting many different ``g`` at one site only ever
            # walks the spine that actually depends on it.
            return u ^ c
        cache = self._compose_cache
        h = u * _H1 + level * _H2 + g
        slot = h & cache.mask
        key = (((u << 32) | level) << _EDGE_BITS) | g
        if cache.keys[slot] == key:
            self.op_stats.compose_hits += 1
            return cache.vals[slot] ^ c
        self.op_stats.compose_misses += 1
        top = self._level[index]
        if top == level:
            # Shannon expansion at the substituted variable (stored high
            # edges are regular; the low edge may carry a complement).
            result = self._ite_e(g, self._high[index], self._low[index])
        else:
            r0 = self._compose_e(self._low[index], level, g)
            r1 = self._compose_e(self._high[index], level, g)
            # ``g`` may mention variables ordered *above* `top`, so the
            # branches cannot simply hang under a fresh `top` node;
            # recombining through ITE on the branch variable restores
            # the global order invariant.
            result = self._ite_e(self._mk(top, _FALSE, _TRUE), r1, r0)
        cache.put(self.op_stats, h, key, result)
        return result ^ c

    # -- existential-quantification computed table (used by quantify.py)

    def _exists_set_id(self, levels: FrozenSet[int]) -> int:
        """Intern a quantified level set to a small integer, so the
        exists computed table can use packed ``(edge, set)`` int keys.
        The interning map is dropped with the caches — level sets are
        meaningless across a reorder anyway."""
        sets = self._exists_sets
        sid = sets.get(levels)
        if sid is None:
            if len(sets) >= (1 << 20):
                # Keys reserve 20 bits for the set id; recycling the id
                # space must drop the cache or stale keys could alias.
                sets.clear()
                self._exists_cache.clear()
            sid = len(sets)
            sets[levels] = sid
        return sid

    def _exists_get(self, edge: int, sid: int) -> Optional[int]:
        """Cached exists result for ``(edge, sid)``, or None."""
        cache = self._exists_cache
        slot = (edge * _H1 + sid * _H2) & cache.mask
        key = (edge << 20) | sid
        if cache.keys[slot] == key:
            return cache.vals[slot]
        return None

    def _exists_put(self, edge: int, sid: int, result: int) -> None:
        """Store an exists result for ``(edge, sid)``."""
        self._exists_cache.put(
            self.op_stats, edge * _H1 + sid * _H2, (edge << 20) | sid, result
        )

    def rename(self, u: Ref, mapping: Mapping[str, str]) -> Ref:
        """Rename variables (the paper's ``B[V -> V']`` primed copy).

        The mapping must be *monotone*: if ``a`` is ordered before ``b`` then
        ``mapping[a]`` must be ordered before ``mapping[b]``.  Monotone
        renaming preserves the BDD shape, so it is a linear-time rebuild.
        Use :meth:`compose` repeatedly for non-monotone substitutions.

        Raises:
            VariableError: If the mapping is not monotone.
        """
        edge = self._unwrap(u)
        level_map: Dict[int, int] = {
            self.level_of(src): self.level_of(dst) for src, dst in mapping.items()
        }
        pairs = sorted(level_map.items())
        for (_, prev_dst), (_, next_dst) in zip(pairs, pairs[1:]):
            if prev_dst >= next_dst:
                raise VariableError(
                    "rename mapping must preserve the variable order"
                )
        cache: Dict[int, int] = {}
        return self._wrap(self._rename_e(edge, level_map, cache))

    def _rename_e(
        self, u: int, level_map: Dict[int, int], cache: Dict[int, int]
    ) -> int:
        # Renaming commutes with complement; cache on the regular edge.
        c = u & 1
        u ^= c
        index = u >> 1
        if index == 0:
            return u ^ c
        cached = cache.get(u)
        if cached is not None:
            return cached ^ c
        result = self._mk(
            level_map.get(self._level[index], self._level[index]),
            self._rename_e(self._low[index], level_map, cache),
            self._rename_e(self._high[index], level_map, cache),
        )
        cache[u] = result
        return result ^ c

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, u: Ref) -> Set[str]:
        """``VarB``: the set of variables occurring in the BDD.

        On a reduced BDD this is exactly the set of variables the function
        *depends on*, which is why Algorithm 1 may implement ``IDP`` via
        support intersection.  Iterative (explicit stack), so deep BDDs
        never hit Python's recursion limit.
        """
        return {
            self.name_of(level)
            for level in self._support_levels(self._unwrap(u))
        }

    def _support_levels(self, edge: int) -> FrozenSet[int]:
        # Support ignores complement bits entirely: work on indices.
        root = edge >> 1
        if root == 0:
            return frozenset()
        cache = self._support_cache
        cached = cache.get(root)
        if cached is not None:
            return cached
        # Collect the uncached part of the DAG, then fold it bottom-up.
        # Children sit at strictly greater levels, so a level-descending
        # sweep is a valid reverse topological order.
        pending: List[int] = []
        seen = {root}
        stack = [root]
        while stack:
            index = stack.pop()
            if index == 0 or index in cache:
                continue
            pending.append(index)
            for child_edge in (self._low[index], self._high[index]):
                child = child_edge >> 1
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        for index in sorted(pending, key=lambda i: -self._level[i]):
            cache[index] = (
                frozenset({self._level[index]})
                | cache.get(self._low[index] >> 1, frozenset())
                | cache.get(self._high[index] >> 1, frozenset())
            )
        return cache[root]

    def evaluate(self, u: Ref, assignment: Mapping[str, bool]) -> bool:
        """Walk from the root following ``assignment`` (Algorithm 2's loop).

        Variables missing from ``assignment`` may only be skipped if the BDD
        does not branch on them.

        Raises:
            KeyError: If the walk reaches a variable not in ``assignment``.
        """
        edge = self._unwrap(u)
        while edge >> 1:
            index = edge >> 1
            name = self.name_of(self._level[index])
            child = self._high[index] if assignment[name] else self._low[index]
            edge = child ^ (edge & 1)
        return edge == _TRUE

    def sat_count(self, u: Ref, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over the variables ``over``
        (default: the manager's full variable set).

        Iterative: reachable nodes are counted in one level-descending
        sweep, so deep BDDs never hit Python's recursion limit.  Counts
        of complemented edges fall out of ``|~f| = 2^k - |f|``.
        """
        root = self._unwrap(u)
        names = list(over) if over is not None else list(self._order)
        levels = sorted(self.level_of(name) for name in names)
        position = {level: i for i, level in enumerate(levels)}
        n = len(levels)

        # Phase 1: collect reachable indices (complement bits irrelevant).
        seen = {root >> 1}
        stack = [root >> 1]
        reachable: List[int] = []
        while stack:
            index = stack.pop()
            if index == 0:
                continue
            if self._level[index] not in position:
                raise VariableError(
                    f"BDD mentions {self.name_of(self._level[index])!r}, "
                    "which is outside the counting scope"
                )
            reachable.append(index)
            for child_edge in (self._low[index], self._high[index]):
                child = child_edge >> 1
                if child not in seen:
                    seen.add(child)
                    stack.append(child)

        # counts[i] = satisfying assignments of the *regular* edge of node
        # i over levels[position(i):].
        counts: Dict[int, int] = {}

        def edge_count(edge: int, from_pos: int) -> int:
            if edge == _TRUE:
                return 1 << (n - from_pos)
            if edge == _FALSE:
                return 0
            index = edge >> 1
            pos = position[self._level[index]]
            value = counts[index] << (pos - from_pos)
            if edge & 1:
                value = (1 << (n - from_pos)) - value
            return value

        # Phase 2: children live at strictly greater levels, so a
        # level-descending sweep resolves them before their parents.
        for index in sorted(reachable, key=lambda i: -self._level[i]):
            pos = position[self._level[index]]
            counts[index] = edge_count(self._low[index], pos + 1) + edge_count(
                self._high[index], pos + 1
            )
        return edge_count(root, 0)

    def probability(self, u: Ref, weights: Mapping[str, float]) -> float:
        """P[f = 1] under independent per-variable success weights.

        The weighted model count of Rauzy's classical algorithm, run
        directly on raw integer edges: for a node at level ``x`` with
        weight ``p``, ``P(node) = p * P(high) + (1 - p) * P(low)``, and a
        complemented edge costs nothing because ``P(~f) = 1 - P(f)``.

        Iterative (explicit stack + level-descending sweep, the same
        shape as :meth:`sat_count`), so deep BDDs never hit Python's
        recursion limit.  Results are memoised in a *manager-level* cache
        keyed on the regular node index: repeated queries against the
        same weight profile — the batch-service hot path — only ever pay
        for nodes not already valued.  A small LRU of per-profile caches
        is kept, so a battery that interleaves a base profile with
        per-query setting overrides does not thrash; GC and in-place
        reordering drop all of them at their existing safe points (part
        of :meth:`clear_caches`).

        Args:
            u: The function to measure.
            weights: Per-variable probability of being ``1``.  Variables
                outside the BDD's support may be omitted.

        Raises:
            MissingWeightError: If the BDD branches on a variable that
                has no weight.
        """
        root = self._unwrap(u)
        index = root >> 1
        if index == 0:
            return 0.0 if root & 1 else 1.0
        if self._prob_last_weights == weights:
            profile = self._prob_last_profile
        else:
            profile = tuple(
                sorted((name, float(p)) for name, p in weights.items())
            )
            self._prob_last_weights = dict(weights)
            self._prob_last_profile = profile
        lw_key = (profile, len(self._order))
        if self._prob_lw_key == lw_key:
            level_weight = self._prob_lw
        else:
            level_weight = {}
            for name, p in profile:
                lv = self._levels.get(name)
                if lv is not None:
                    level_weight[lv] = p
            self._prob_lw_key = lw_key
            self._prob_lw = level_weight
        caches = self._prob_caches
        # Popped for LRU recency; (re-)inserted only after a successful
        # sweep, so a MissingWeightError neither evicts a populated
        # profile nor registers a useless empty one.  Each cache is a
        # dense float64 array parallel to the node store (NaN = not
        # valued), extended when the store has grown since last use.
        cache = caches.pop(profile, None)
        fresh = cache is None
        nslots = len(self._level)
        if fresh:
            cache = array("d", [nan]) * nslots
        elif len(cache) < nslots:
            cache.extend(array("d", [nan]) * (nslots - len(cache)))
        stats = self.op_stats
        governed = self._governor is not None
        if cache[index] == cache[index]:  # NaN-check: valued already?
            stats.prob_hits += 1
        else:
            try:
                level, low, high = self._level, self._low, self._high
                # Phase 1: collect the reachable *uncached* part of the
                # DAG (descent stops at valued nodes, like the support
                # sweep).
                pending: List[int] = []
                seen = {index}
                stack = [index]
                gov_ticks = 0
                while stack:
                    if governed:
                        # Strided safe point: nothing mutated yet this
                        # sweep, and one check per 64 nodes keeps the
                        # armed cost to a counter bump.
                        gov_ticks += 1
                        if gov_ticks & 63 == 1:
                            self._governed_point(weight=_GOV_STRIDE)
                    i = stack.pop()
                    if i == 0:
                        continue
                    if cache[i] == cache[i]:
                        stats.prob_hits += 1
                        continue
                    if level[i] not in level_weight:
                        raise MissingWeightError(
                            f"no weight for BDD variable "
                            f"{self.name_of(level[i])!r}"
                        )
                    pending.append(i)
                    for child_edge in (low[i], high[i]):
                        child = child_edge >> 1
                        if child not in seen:
                            seen.add(child)
                            stack.append(child)
            except MissingWeightError:
                if not fresh:
                    # Phase 1 wrote nothing: the popped cache is intact.
                    caches[profile] = cache
                raise
            # Phase 2: children sit at strictly greater levels, so a
            # level-descending sweep values them before their parents.
            pending.sort(key=lambda i: -level[i])
            for gov_ticks, i in enumerate(pending):
                if governed and gov_ticks & 63 == 0:
                    # Strided safe point: an abort drops the popped
                    # cache whole (it is only re-registered after a
                    # full sweep).
                    self._governed_point(weight=_GOV_STRIDE)
                p = level_weight[level[i]]
                lo = low[i]
                lv = 1.0 if lo >> 1 == 0 else cache[lo >> 1]
                if lo & 1:
                    lv = 1.0 - lv
                hi = high[i]  # stored high edges are regular (invariant)
                hv = 1.0 if hi >> 1 == 0 else cache[hi >> 1]
                cache[i] = p * hv + (1.0 - p) * lv
            stats.prob_misses += len(pending)
        if fresh:
            while len(caches) >= _PROB_PROFILE_LIMIT:
                del caches[next(iter(caches))]  # evict least recently used
        caches[profile] = cache  # (re-)insert as most recently used
        value = cache[index]
        return 1.0 - value if root & 1 else value

    def probability_many(
        self,
        u: Union[Ref, Sequence[Ref]],
        profiles: Sequence[Mapping[str, float]],
    ) -> List:
        """P[f = 1] under **many** weight profiles in one traversal.

        The vectorised counterpart of :meth:`probability`: the reachable
        DAG is collected once, sorted children-first (descending level),
        and then every profile is evaluated simultaneously — with numpy,
        one ``(nodes, profiles)`` value matrix is filled level block by
        level block (``V = w * V[high] + (1 - w) * V[low]``, complement
        edges folded as ``c + (1 - 2c) * V``), so the per-node Python
        interpreter cost is paid once rather than once per profile.
        Without numpy a single pure-Python traversal still evaluates all
        profiles per node, which beats repeated :meth:`probability`
        calls on traversal overhead alone.

        ``u`` may also be a *sequence* of Refs: the union of their
        reachable DAGs is swept once (shared nodes are evaluated once
        for the whole battery) and one row of probabilities is returned
        per root — the shape a multi-root battery wants, since profile
        validation and the weight matrix are likewise paid once.

        Deliberately stateless: results are not written to the
        per-profile :meth:`probability` caches (a sweep's profiles are
        typically one-shot — variant batteries, sensitivity grids — and
        would only thrash the LRU).

        Args:
            u: The function to measure, or a sequence of functions.
            profiles: Per-profile mappings of variable name -> weight.
                Variables outside the BDDs' support may be omitted.

        Returns:
            One probability per profile, in order — or, for a sequence
            of roots, one such list per root.

        Raises:
            MissingWeightError: If a BDD branches on a variable some
                profile carries no weight for.
        """
        single = isinstance(u, Ref)
        roots = [self._unwrap(u)] if single else [self._unwrap(r) for r in u]
        profiles = list(profiles)
        nprof = len(profiles)

        def _shape(rows: List[List[float]]):
            return rows[0] if single else rows

        if not roots:
            return []
        if nprof == 0:
            return _shape([[] for _ in roots])
        level, low, high = self._level, self._low, self._high
        governed = self._governor is not None
        # Phase 1: collect the union of the reachable DAGs and the
        # levels they branch on.
        pending: List[int] = []
        used_levels: Set[int] = set()
        seen = {0}
        stack = [root >> 1 for root in roots]
        gov_ticks = 0
        while stack:
            if governed:
                gov_ticks += 1
                if gov_ticks & 63 == 1:
                    self._governed_point(weight=_GOV_STRIDE)
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            pending.append(i)
            used_levels.add(level[i])
            for child_edge in (low[i], high[i]):
                child = child_edge >> 1
                if child not in seen:
                    stack.append(child)
        if not pending:
            # Every root is a terminal edge.
            return _shape(
                [[0.0 if root & 1 else 1.0] * nprof for root in roots]
            )
        # Per-profile weight rows over the used levels, validated before
        # any arithmetic so a missing weight fails like probability().
        lv_sorted = sorted(used_levels)
        names = [self.name_of(lv) for lv in lv_sorted]
        weight_rows: List[List[float]] = []
        for j, weights in enumerate(profiles):
            row = []
            for name in names:
                if name not in weights:
                    raise MissingWeightError(
                        f"no weight for BDD variable {name!r} "
                        f"in profile {j}"
                    )
                row.append(float(weights[name]))
            weight_rows.append(row)
        # Children sit at strictly greater levels: descending-level order
        # is children-first, and nodes of one level block never reference
        # each other — the block recurrence below is well-defined.
        pending.sort(key=lambda i: -level[i])
        lvrow = {lv: r for r, lv in enumerate(lv_sorted)}
        np_mod = _nputil.np
        if np_mod is not None:
            np = np_mod
            n = len(pending)
            pos = {0: 0}
            for k, i in enumerate(pending):
                pos[i] = k + 1
            lowpos = np.empty(n, dtype=np.intp)
            lowc = np.empty(n, dtype=np.float64)
            highpos = np.empty(n, dtype=np.intp)
            wrow = np.empty(n, dtype=np.intp)
            for k, i in enumerate(pending):
                le = low[i]
                he = high[i]  # stored high edges are regular (invariant)
                lowpos[k] = pos[le >> 1]
                lowc[k] = le & 1
                highpos[k] = pos[he >> 1]
                wrow[k] = lvrow[level[i]]
            # Row 0 is the terminal (value 1.0); node k fills row k + 1.
            value = np.empty((n + 1, nprof), dtype=np.float64)
            value[0] = 1.0
            weight = np.asarray(weight_rows, dtype=np.float64).T[wrow]
            lv_arr = [level[i] for i in pending]
            start = 0
            while start < n:
                lv = lv_arr[start]
                end = start + 1
                while end < n and lv_arr[end] == lv:
                    end += 1
                sl = slice(start, end)
                lval = value[lowpos[sl]]
                comp = lowc[sl][:, None]
                lval = comp + (1.0 - 2.0 * comp) * lval
                hval = value[highpos[sl]]
                w = weight[sl]
                value[start + 1 : end + 1] = w * hval + (1.0 - w) * lval
                start = end
            rows = []
            for root in roots:
                out = value[pos[root >> 1]]
                if root & 1:
                    out = 1.0 - out
                rows.append([float(x) for x in out])
            return _shape(rows)
        # Pure-Python fallback: same sweep, a list of per-profile values
        # per node (all profiles advanced in one traversal).
        level_w = {
            lv: [weight_rows[p][r] for p in range(nprof)]
            for r, lv in enumerate(lv_sorted)
        }
        vals: Dict[int, List[float]] = {0: [1.0] * nprof}
        for i in pending:
            le = low[i]
            he = high[i]
            lval = vals[le >> 1]
            if le & 1:
                lval = [1.0 - x for x in lval]
            hval = vals[he >> 1]
            ws = level_w[level[i]]
            vals[i] = [
                w * hv + (1.0 - w) * lv_
                for w, hv, lv_ in zip(ws, hval, lval)
            ]
        rows = []
        for root in roots:
            out_list = vals[root >> 1]
            if root & 1:
                out_list = [1.0 - x for x in out_list]
            rows.append([float(x) for x in out_list])
        return _shape(rows)

    def node_count(self) -> int:
        """Number of live stored nodes (unique table plus the ``1``
        terminal); free-listed slots are not counted.

        With complement edges a function and its negation share every
        node, so this is typically about half the size the pre-refactor
        pointer kernel reported for negation-heavy workloads.
        """
        return len(self._level) - len(self._free)

    def peak_node_count(self) -> int:
        """High-water mark of :meth:`node_count` over the manager's
        lifetime.  With garbage collection reclaiming dead nodes, this can
        sit well below the total number of slots ever allocated."""
        return self._peak_nodes

    def check_invariants(self) -> None:
        """Verify the kernel's canonical-form invariants; raise
        ``AssertionError`` on violation.

        Checked for every live stored node: the high edge is regular
        (complement bits only ever sit on low edges and external
        handles), children are distinct and live, levels strictly
        increase towards the leaves, and the unique table maps back to
        the node.  Free-listed slots must be exactly the holes in the
        index space, and every externally referenced index must be live.
        Used by the property-test suite; cheap enough to call in
        debugging sessions (O(nodes)).
        """
        holes = 0
        for index in range(1, len(self._level)):
            level = self._level[index]
            if level == _FREE_LEVEL:
                holes += 1
                continue
            low, high = self._low[index], self._high[index]
            assert high & 1 == 0, f"node {index} stores a complemented high edge"
            assert low != high, f"node {index} has identical children"
            assert self._level[low >> 1] != _FREE_LEVEL, (
                f"node {index} references the freed slot {low >> 1}"
            )
            assert self._level[high >> 1] != _FREE_LEVEL, (
                f"node {index} references the freed slot {high >> 1}"
            )
            assert level < self._level[low >> 1], f"node {index} breaks the order"
            assert level < self._level[high >> 1], f"node {index} breaks the order"
            assert self._ut_find(level, low, high) == index, (
                f"node {index} missing from the unique table"
            )
        assert holes == len(self._free), "free list out of sync with the store"
        assert len(self._free) == len(set(self._free)), "free list has duplicates"
        for index in self._free:
            assert self._level[index] == _FREE_LEVEL, (
                f"free-listed slot {index} still holds a live node"
            )
        assert self._ut_count == self.node_count() - 1
        entries = [idx for idx in self._ut_slots if idx >= 0]
        assert len(entries) == self._ut_count, (
            "unique-table slot population out of sync with its count"
        )
        assert len(set(entries)) == len(entries), (
            "unique table holds duplicate slot entries"
        )
        for idx in entries:
            assert self._level[idx] != _FREE_LEVEL, (
                f"unique table references the freed slot {idx}"
            )
        assert len(self._ut_slots) >= 2 * self._ut_count, (
            "unique table over its load factor"
        )
        assert len(self._refcount) == len(self._level), (
            "refcount array out of sync with the node arrays"
        )
        for index, count in enumerate(self._refcount):
            assert count >= 0, f"negative refcount for index {index}"
            if count > 0:
                assert index == 0 or self._level[index] != _FREE_LEVEL, (
                    f"externally referenced node {index} was reclaimed"
                )
        for edge, ref in list(self._refs.items()):
            assert ref.edge == edge, "interning table maps an edge to a foreign Ref"
            index = edge >> 1
            assert index == 0 or self._level[index] != _FREE_LEVEL, (
                f"live Ref points at the freed slot {index}"
            )

    def cache_stats(self) -> Dict[str, int]:
        """Operation-cache counters plus current table sizes.

        The hit/miss counters are :attr:`op_stats` (monotone for the
        manager's lifetime, even across :meth:`clear_caches`); the
        ``*_cache_size`` entries are the live memo-table populations, and
        ``unique_table_size`` / ``live_nodes`` / ``peak_live_nodes``
        describe the node store itself.  ``dead_nodes`` is the number of
        live slots no longer reachable from any external Ref (what the
        next :meth:`collect` would reclaim — computed by an O(nodes) mark
        pass); ``gc_runs`` / ``reclaimed`` / ``swaps`` / ``sift_runs`` /
        ``auto_reorders`` are the monotone memory-management counters.
        """
        data = self.op_stats.snapshot()
        data["apply_cache_size"] = len(self._apply_cache)
        data["ite_cache_size"] = len(self._ite_cache)
        data["restrict_cache_size"] = len(self._restrict_cache)
        data["compose_cache_size"] = len(self._compose_cache)
        np_mod = _nputil.np
        prob_entries = 0
        for cache in self._prob_caches.values():
            if np_mod is not None:
                view = np_mod.frombuffer(cache, dtype=np_mod.float64)
                prob_entries += int((view == view).sum())
            else:
                prob_entries += sum(1 for v in cache if v == v)
        data["prob_cache_size"] = prob_entries
        data["prob_profiles"] = len(self._prob_caches)
        data["unique_table_size"] = self._ut_count
        data["unique_capacity"] = len(self._ut_slots)
        data["ut_max_probe"] = self._ut_max_probe
        data["cache_capacity"] = (
            len(self._apply_cache.keys)
            + len(self._ite_cache.keys)
            + len(self._restrict_cache.keys)
            + len(self._compose_cache.keys)
            + len(self._exists_cache.keys)
        )
        data["live_nodes"] = self.node_count()
        data["peak_live_nodes"] = self._peak_nodes
        data["free_list"] = len(self._free)
        _, reachable = self._mark_external()
        data["dead_nodes"] = self.node_count() - reachable
        data["gc_runs"] = self._gc_runs
        data["reclaimed"] = self._reclaimed
        data["swaps"] = self._swaps
        data["sift_runs"] = self._sift_runs
        data["auto_reorders"] = self._auto_reorders
        return data

    def clear_caches(self) -> None:
        """Drop all operation memo tables (the unique table is kept).

        The probability cache is keyed on node indices, so it must go
        whenever indices can be reclaimed or rewired — :meth:`collect`
        (after any reclaim), :meth:`swap` and :meth:`sift_inplace` all
        come through here.
        """
        self._apply_cache.clear()
        self._ite_cache.clear()
        self._restrict_cache.clear()
        self._compose_cache.clear()
        self._exists_cache.clear()
        self._exists_sets.clear()
        self._support_cache.clear()
        self._prob_caches.clear()
        # The level->weight memo maps *levels*, whose meaning a swap
        # just changed; the profile fast path (name-keyed) stays valid.
        self._prob_lw_key = None
        self._prob_lw = {}

    # ------------------------------------------------------------------
    # Portable kernel snapshots
    # ------------------------------------------------------------------

    def save_snapshot(
        self,
        roots: Optional[Mapping[str, Ref]] = None,
        *,
        binary: bool = False,
    ) -> Dict[str, object]:
        """Serialise the node store into a portable, JSON-safe dict.

        The snapshot captures exactly the canonical kernel state — the
        variable order and the ``(level, low, high)`` parallel arrays —
        plus a mapping of *named root edges* so callers can find their
        functions again after :meth:`load_snapshot`.  Complement bits
        travel inside the tagged edges, so a complemented root reloads
        complemented.  Deliberately **excluded**: every memo table (apply/
        ITE/restrict/exists/support/probability caches) and all GC/
        reordering counters — caches are keyed on node indices and level
        meanings that only hold inside one process lifetime, and they are
        pure accelerators the target manager rebuilds on demand (see
        DESIGN.md).

        Node slots are compacted on the way out: free-list holes vanish
        and live indices are remapped to a dense, children-first
        (descending-level) numbering, which is what lets
        :meth:`load_snapshot` rebuild the store in one append-only pass.

        With ``binary=True`` the three node arrays are emitted as raw
        native-endian int64 ``bytes`` (version 2) instead of lists —
        one ``memcpy`` out of the compacted buffers, and on load the
        receiving manager adopts them wholesale with ``frombytes``
        rather than rebuilding node-by-node.  Binary payloads are what
        the shard workers ship (pickle handles ``bytes`` natively);
        they are *not* JSON-safe, and they record ``sys.byteorder`` so
        a foreign-endian payload fails loudly instead of silently
        misreading.  The default stays the version-1 JSON-safe lists.

        Args:
            roots: Named handles to preserve.  When given, only nodes
                reachable from these roots are saved (dead and unrelated
                nodes are left behind); when omitted, every live stored
                node is saved and ``roots`` is empty in the result.
            binary: Emit the node arrays as int64 ``bytes`` (version 2).

        Returns:
            A dict of plain lists/ints/strings — safe for ``json.dumps``
            and for pickling across process boundaries — or, with
            ``binary=True``, the same dict with ``bytes`` node arrays.
        """
        level, low, high = self._level, self._low, self._high
        root_edges: Dict[str, int] = {}
        np_mod = _nputil.np
        if roots is not None:
            for name, ref in roots.items():
                root_edges[str(name)] = self._unwrap(ref)
            seen = {0}
            stack = [edge >> 1 for edge in root_edges.values()]
            live: List[int] = []
            while stack:
                index = stack.pop()
                if index in seen:
                    continue
                seen.add(index)
                live.append(index)
                stack.append(low[index] >> 1)
                stack.append(high[index] >> 1)
        elif np_mod is not None:
            lv_view = np_mod.frombuffer(level, dtype=np_mod.int64)
            live = np_mod.nonzero(lv_view != _FREE_LEVEL)[0][1:].tolist()
        else:
            live = [
                index
                for index in range(1, len(level))
                if level[index] != _FREE_LEVEL
            ]
        # Children sit at strictly greater levels, so descending-level
        # order lists every child before its parents; ties (one level)
        # cannot be related, and the index tie-break keeps it stable.
        if np_mod is not None and live:
            np = np_mod
            lv_view = np.frombuffer(level, dtype=np.int64)
            lo_view = np.frombuffer(low, dtype=np.int64)
            hi_view = np.frombuffer(high, dtype=np.int64)
            live_arr = np.asarray(live, dtype=np.int64)
            # lexsort: last key is primary (descending level, then index).
            order = np.lexsort((live_arr, -lv_view[live_arr]))
            live_arr = live_arr[order]
            remap_arr = np.zeros(len(level), dtype=np.int64)
            remap_arr[live_arr] = np.arange(1, len(live_arr) + 1)
            lo_live = lo_view[live_arr]
            hi_live = hi_view[live_arr]
            out_levels = lv_view[live_arr]
            out_lows = (remap_arr[lo_live >> 1] << 1) | (lo_live & 1)
            out_highs = (remap_arr[hi_live >> 1] << 1) | (hi_live & 1)
            out_roots = {
                name: int((remap_arr[edge >> 1] << 1) | (edge & 1))
                for name, edge in root_edges.items()
            }
            if binary:
                return _stamp_snapshot({
                    "format": SNAPSHOT_FORMAT,
                    "version": SNAPSHOT_VERSION_BINARY,
                    "variables": list(self._order),
                    "byteorder": sys.byteorder,
                    "levels": out_levels.tobytes(),
                    "lows": out_lows.tobytes(),
                    "highs": out_highs.tobytes(),
                    "roots": out_roots,
                })
            return _stamp_snapshot({
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "variables": list(self._order),
                "levels": out_levels.tolist(),
                "lows": out_lows.tolist(),
                "highs": out_highs.tolist(),
                "roots": out_roots,
            })
        live.sort(key=lambda i: (-level[i], i))
        remap = {0: 0}
        for position, index in enumerate(live):
            remap[index] = position + 1
        levels_list = [level[i] for i in live]
        lows_list = [
            (remap[low[i] >> 1] << 1) | (low[i] & 1) for i in live
        ]
        highs_list = [
            (remap[high[i] >> 1] << 1) | (high[i] & 1) for i in live
        ]
        roots_out = {
            name: (remap[edge >> 1] << 1) | (edge & 1)
            for name, edge in root_edges.items()
        }
        if binary:
            return _stamp_snapshot({
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION_BINARY,
                "variables": list(self._order),
                "byteorder": sys.byteorder,
                "levels": array("q", levels_list).tobytes(),
                "lows": array("q", lows_list).tobytes(),
                "highs": array("q", highs_list).tobytes(),
                "roots": roots_out,
            })
        return _stamp_snapshot({
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "variables": list(self._order),
            "levels": levels_list,
            "lows": lows_list,
            "highs": highs_list,
            "roots": roots_out,
        })

    @classmethod
    def load_snapshot(
        cls, data: Mapping[str, object]
    ) -> Tuple["BDDManager", Dict[str, Ref]]:
        """Rebuild a fresh manager (plus its named roots) from a
        :meth:`save_snapshot` dict.

        Every canonical-form invariant is re-validated on the way in —
        regular stored high edges, distinct children, strictly increasing
        levels, no duplicate ``(level, low, high)`` triples, children
        preceding parents — so a reloaded manager passes
        :meth:`check_invariants` or the load fails loudly.  Caches start
        cold and automatic GC/reordering starts disarmed (configure them
        via :meth:`configure_memory` as usual).

        Raises:
            SnapshotError: On any malformed or foreign payload.
        """

        def _int(value: object, what: str) -> int:
            # bool is an int subclass; a snapshot carrying `true` where a
            # node index belongs is corrupt, not convertible.
            if isinstance(value, bool) or not isinstance(value, int):
                raise SnapshotError(f"{what} must be an integer, got {value!r}")
            return value

        if not isinstance(data, Mapping):
            raise SnapshotError(
                f"snapshot must be a mapping, got {type(data).__name__}"
            )
        if data.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"not a kernel snapshot (format={data.get('format')!r}, "
                f"expected {SNAPSHOT_FORMAT!r})"
            )
        version = data.get("version")
        if version not in (SNAPSHOT_VERSION, SNAPSHOT_VERSION_BINARY):
            raise SnapshotError(
                f"unsupported snapshot version {version!r} "
                f"(this kernel reads versions {SNAPSHOT_VERSION} and "
                f"{SNAPSHOT_VERSION_BINARY})"
            )
        # Content integrity comes before structural decoding: a
        # truncated or bit-flipped payload is reported as corruption
        # (SnapshotIntegrityError), not as whichever downstream shape
        # check it happens to trip.  Snapshots written before checksums
        # existed carry no digest and stay loadable.
        declared = data.get("sha256")
        if declared is not None:
            actual = snapshot_checksum(data)
            if declared != actual:
                raise SnapshotIntegrityError(
                    "snapshot payload failed its sha256 content checksum "
                    f"(stored {str(declared)[:16]}…, computed "
                    f"{actual[:16]}…): corrupt or truncated snapshot"
                )
        variables = data.get("variables")
        levels = data.get("levels")
        lows = data.get("lows")
        highs = data.get("highs")
        raw_roots = data.get("roots", {})
        if not isinstance(variables, list):
            raise SnapshotError("snapshot 'variables' must be a list")
        if version == SNAPSHOT_VERSION:
            for what, value in (
                ("levels", levels), ("lows", lows), ("highs", highs),
            ):
                if not isinstance(value, list):
                    raise SnapshotError(f"snapshot {what!r} must be a list")
        else:
            byteorder = data.get("byteorder")
            if byteorder != sys.byteorder:
                raise SnapshotError(
                    f"binary snapshot byte order {byteorder!r} does not "
                    f"match this host ({sys.byteorder!r}); use the "
                    "version-1 list format across architectures"
                )
            decoded = []
            for what, value in (
                ("levels", levels), ("lows", lows), ("highs", highs),
            ):
                if not isinstance(value, (bytes, bytearray)):
                    raise SnapshotError(
                        f"binary snapshot {what!r} must be bytes"
                    )
                if len(value) % 8:
                    raise SnapshotError(
                        f"binary snapshot {what!r} is not a whole number "
                        "of int64 values"
                    )
                arr = array("q")
                arr.frombytes(value)
                decoded.append(arr)
            levels, lows, highs = decoded
        if not isinstance(raw_roots, Mapping):
            raise SnapshotError("snapshot 'roots' must be a mapping")
        if not len(levels) == len(lows) == len(highs):
            raise SnapshotError(
                "snapshot node arrays disagree in length "
                f"({len(levels)}/{len(lows)}/{len(highs)})"
            )

        manager = cls(variables)  # VariableError on empty/duplicate names
        n_vars = len(manager._order)
        np_mod = _nputil.np
        if np_mod is not None and len(levels) and cls._validate_arrays_np(
            np_mod, levels, lows, highs, n_vars
        ):
            # Bulk adoption: every invariant vectorised-verified above,
            # so the three buffers append onto the node arrays in one
            # memcpy each and the unique table rebuilds tombstone-free.
            n = len(levels)
            if isinstance(levels, array):
                manager._level.frombytes(levels.tobytes())
                manager._low.frombytes(lows.tobytes())
                manager._high.frombytes(highs.tobytes())
            else:
                manager._level.extend(levels)
                manager._low.extend(lows)
                manager._high.extend(highs)
            manager._refcount.frombytes(bytes(8 * n))
            manager._peak_nodes = n + 1
            manager._ut_rebuild()
        else:
            # Pure-Python path (and the precise-diagnosis path when the
            # vectorised validator saw anything suspect): node-by-node
            # checks with exact per-node error messages.
            for position, (lv, lo, hi) in enumerate(zip(levels, lows, highs)):
                index = position + 1
                lv = _int(lv, f"node {index}: level")
                lo = _int(lo, f"node {index}: low edge")
                hi = _int(hi, f"node {index}: high edge")
                if not 0 <= lv < n_vars:
                    raise SnapshotError(
                        f"node {index}: level {lv} outside the "
                        f"{n_vars}-variable order"
                    )
                for label, edge in (("low", lo), ("high", hi)):
                    if edge < 0 or (edge >> 1) >= index:
                        raise SnapshotError(
                            f"node {index}: {label} edge {edge} does not "
                            "reference an earlier snapshot node"
                        )
                if hi & 1:
                    raise SnapshotError(
                        f"node {index}: stored high edge is complemented"
                    )
                if lo == hi:
                    raise SnapshotError(f"node {index}: identical children")
                if (
                    lv >= manager._level[lo >> 1]
                    or lv >= manager._level[hi >> 1]
                ):
                    raise SnapshotError(
                        f"node {index}: level {lv} does not precede its "
                        "children"
                    )
                prior = manager._ut_find(lv, lo, hi)
                if prior >= 0:
                    raise SnapshotError(
                        f"node {index}: duplicates node {prior}"
                    )
                slot = manager._alloc_slot(lv, lo, hi)
                manager._ut_insert(lv, lo, hi, slot)
        roots: Dict[str, Ref] = {}
        for name, edge in raw_roots.items():
            edge = _int(edge, f"root {name!r}")
            if edge < 0 or (edge >> 1) > len(levels):
                raise SnapshotError(
                    f"root {name!r}: edge {edge} points outside the store"
                )
            roots[str(name)] = manager._wrap(edge)
        return manager, roots

    @staticmethod
    def _validate_arrays_np(np, levels, lows, highs, n_vars: int) -> bool:
        """Vectorised snapshot validation: True iff every node passes
        every canonical-form check.  Returns False (never raises) on any
        violation *or* any non-integer payload, handing off to the
        per-node Python loop for an exact diagnostic."""
        try:
            lv = np.asarray(levels)
            lo = np.asarray(lows)
            hi = np.asarray(highs)
        except (TypeError, ValueError, OverflowError):
            return False
        for arr in (lv, lo, hi):
            if arr.dtype.kind not in "iu" or arr.ndim != 1:
                return False
        lv = lv.astype(np.int64, copy=False)
        lo = lo.astype(np.int64, copy=False)
        hi = hi.astype(np.int64, copy=False)
        n = len(lv)
        positions = np.arange(n, dtype=np.int64)
        if not (
            bool(((lv >= 0) & (lv < n_vars)).all())
            and bool((lo >= 0).all())
            and bool((hi >= 0).all())
            and bool(((lo >> 1) <= positions).all())
            and bool(((hi >> 1) <= positions).all())
            and bool((hi & 1 == 0).all())
            and bool((lo != hi).all())
        ):
            return False
        # Strict level order: children (earlier snapshot positions, or
        # the terminal at pseudo-position 0) sit at greater levels.
        full = np.empty(n + 1, dtype=np.int64)
        full[0] = TERMINAL_LEVEL
        full[1:] = lv
        if not (
            bool((lv < full[lo >> 1]).all())
            and bool((lv < full[hi >> 1]).all())
        ):
            return False
        # No two nodes may share a (level, low, high) key.
        order = np.lexsort((hi, lo, lv))
        slv, slo, shi = lv[order], lo[order], hi[order]
        dup = (
            (slv[1:] == slv[:-1])
            & (slo[1:] == slo[:-1])
            & (shi[1:] == shi[:-1])
        )
        return not bool(dup.any())

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _mark_external(self) -> Tuple[bytearray, int]:
        """Mark every node reachable from a live external Ref.

        Returns ``(marked, count)`` where ``marked[index]`` is 1 for
        reachable indices (the terminal always counts) and ``count`` is
        the number of marked indices.
        """
        low, high = self._low, self._high
        marked = bytearray(len(self._level))
        marked[0] = 1
        count = 1
        # Root scan over the refcount buffer.  Finalizers of
        # cycle-collected Refs may decrement counts at any allocation
        # point, which only ever shrinks the root set — a stale positive
        # read keeps a node alive one collection longer, never frees a
        # live one.
        np_mod = _nputil.np
        if np_mod is not None:
            view = np_mod.frombuffer(self._refcount, dtype=np_mod.int64)
            stack = np_mod.nonzero(view > 0)[0].tolist()
        else:
            stack = [
                index
                for index, refs in enumerate(self._refcount)
                if refs > 0
            ]
        for index in stack:
            if not marked[index]:
                marked[index] = 1
                count += 1
        stack = [index for index in stack if index]
        while stack:
            index = stack.pop()
            for child in (low[index] >> 1, high[index] >> 1):
                if not marked[child]:
                    marked[child] = 1
                    count += 1
                    stack.append(child)
        return marked, count

    def reachable_node_count(self) -> int:
        """Stored nodes reachable from live external Refs (terminal
        included) — the exact post-:meth:`collect` value of
        ``node_count``."""
        return self._mark_external()[1]

    def collect(self) -> int:
        """Mark-and-sweep garbage collection; returns the reclaim count.

        Roots are the node indices with a positive external refcount
        (i.e. at least one live :class:`Ref` handle, of either polarity).
        Every unreachable node leaves the unique table and its index goes
        on the free list for :meth:`_mk` to reuse.  Operation memo tables
        are dropped whenever anything was reclaimed — cached entries may
        mention reclaimed indices, and a reused index would otherwise
        alias a stale result.  The unique table itself only ever holds
        live keys afterwards, so lookups stay exact with holes in the
        index space.
        """
        marked, _ = self._mark_external()
        level = self._level
        free = self._free
        dead = 0
        for index in range(1, len(level)):
            if level[index] != _FREE_LEVEL and not marked[index]:
                level[index] = _FREE_LEVEL
                free.append(index)
                dead += 1
        if dead:
            self.clear_caches()
            # Tombstone-free rebuild sized to the survivors: reclaiming
            # per-key would backward-shift every cluster the dead nodes
            # sat in; one sweep over the store is cheaper and leaves a
            # collision-free table.
            self._ut_rebuild()
        self._gc_runs += 1
        self._reclaimed += dead
        self._gc_trigger = max(
            self._gc_min_trigger, int(self._gc_growth * self.node_count())
        )
        return dead

    def maybe_collect(self) -> int:
        """Run :meth:`collect` iff automatic GC is on and the live count
        has crossed the adaptive trigger (``gc_growth`` times the working
        set left by the previous collection)."""
        if self._gc_enabled and self.node_count() >= self._gc_trigger:
            return self.collect()
        return 0

    def configure_memory(
        self,
        *,
        auto_gc: Optional[bool] = None,
        gc_trigger: Optional[int] = None,
        gc_growth: Optional[float] = None,
        auto_reorder: Optional[bool] = None,
        reorder_trigger: Optional[int] = None,
        reorder_max_growth: Optional[float] = None,
    ) -> None:
        """Tune the automatic memory-management triggers.

        Args:
            auto_gc: Enable/disable the :meth:`maybe_collect` trigger.
            gc_trigger: Live-node count that arms the next collection
                (default: ``gc_growth`` x the current working set).
            gc_growth: Headroom factor applied after every collection
                (peak live nodes stay below roughly this multiple of the
                steady-state working set).
            auto_reorder: Enable/disable the :meth:`maybe_reorder`
                trigger.
            reorder_trigger: Live-node count that arms the next automatic
                :meth:`sift_inplace`.
            reorder_max_growth: Max-growth factor handed to the sifter.
        """
        if gc_growth is not None:
            if gc_growth <= 1.0:
                raise ValueError("gc_growth must be > 1")
            self._gc_growth = gc_growth
        if auto_gc is not None:
            self._gc_enabled = auto_gc
        if gc_trigger is not None:
            self._gc_min_trigger = max(1, int(gc_trigger))
            self._gc_trigger = self._gc_min_trigger
        elif auto_gc:
            self._gc_trigger = max(
                self._gc_min_trigger, int(self._gc_growth * self.node_count())
            )
        if auto_reorder is not None:
            self._auto_reorder = auto_reorder
        if reorder_trigger is not None:
            self._reorder_min_trigger = max(2, int(reorder_trigger))
            self._reorder_trigger = self._reorder_min_trigger
        if reorder_max_growth is not None:
            if reorder_max_growth <= 1.0:
                raise ValueError("reorder_max_growth must be > 1")
            self._reorder_max_growth = reorder_max_growth

    def maybe_reorder(self) -> bool:
        """Run one automatic :meth:`sift_inplace` round iff auto-reorder
        is on and live nodes crossed the trigger; the next trigger then
        backs off (CUDD-style) so reordering amortises."""
        if not self._auto_reorder or self.node_count() < self._reorder_trigger:
            return False
        self._auto_reorders += 1
        self.sift_inplace(max_rounds=1, max_growth=self._reorder_max_growth)
        self._reorder_trigger = max(
            self._reorder_min_trigger, 4 * self.node_count()
        )
        return True

    def checkpoint(self) -> None:
        """Safe point for automatic memory management.

        Node indices held as raw integers inside an in-flight recursion
        must never be reclaimed or rewired under it, so the automatic
        triggers only ever fire here — between whole operations — where
        every live function is pinned by a Ref.  The translation layers
        (:class:`~repro.ft.to_bdd.TreeTranslator`,
        :class:`~repro.service.batch.BatchAnalyzer`) call this between
        elements/queries; a no-op (two int compares) while both automatic
        features are disabled.
        """
        if self._gc_enabled:
            self.maybe_collect()
        if self._auto_reorder:
            self.maybe_reorder()

    # ------------------------------------------------------------------
    # In-place dynamic reordering (adjacent-level swap + Rudell sifting)
    # ------------------------------------------------------------------

    def _reorder_context(self) -> Tuple[List[int], Dict[int, Set[int]]]:
        """Internal parent counts and per-level membership for a
        reordering session (O(nodes) to build, maintained incrementally
        across swaps)."""
        nslots = len(self._level)
        parents = [0] * nslots
        members: Dict[int, Set[int]] = {}
        level, low, high = self._level, self._low, self._high
        for index in range(1, nslots):
            lv = level[index]
            if lv == _FREE_LEVEL:
                continue
            members.setdefault(lv, set()).add(index)
            parents[low[index] >> 1] += 1
            parents[high[index] >> 1] += 1
        return parents, members

    def _swap_alloc(
        self, level: int, low: int, high: int, parents: List[int]
    ) -> int:
        """Allocate a node slot during a swap, maintaining parent counts."""
        index = self._alloc_slot(level, low, high)
        if index >= len(parents):
            parents.extend([0] * (index + 1 - len(parents)))
        parents[index] = 0
        parents[low >> 1] += 1
        parents[high >> 1] += 1
        return index

    def _swap_mk(
        self,
        level: int,
        low: int,
        high: int,
        parents: List[int],
        bucket: Set[int],
    ) -> int:
        """``mk`` restricted to swap rewiring: unique-table sharing plus
        the canonical complement push, no order validation (the caller
        guarantees children sit strictly below ``level``)."""
        if low == high:
            return low
        c = high & 1
        if c:
            low ^= 1
            high ^= 1
        index = self._ut_find(level, low, high)
        if index < 0:
            index = self._swap_alloc(level, low, high, parents)
            self._ut_insert(level, low, high, index)
            bucket.add(index)
        return (index << 1) | c

    def _swap_adjacent(
        self, i: int, parents: List[int], members: Dict[int, Set[int]]
    ) -> None:
        """Exchange variable levels ``i`` and ``i + 1`` in place.

        The correctness argument (see docs/ARCHITECTURE.md for the long
        form): every pre-existing index keeps denoting the same Boolean
        function, so parents above and external Refs never need
        forwarding.  Nodes of the lower level move up unchanged (their
        children sit strictly below both levels); upper-level nodes that
        do not branch on the swapped variable move down unchanged; the
        interacting ones are rewired through the Shannon quadrants
        ``F = y ? (x ? F11 : F01) : (x ? F10 : F00)``.  The rewired high
        child is always regular — its high quadrant comes from a stored
        high edge — so the stored polarity of the rewired node (what
        parents and Refs see) never flips.  Lower-level nodes that lose
        their last parent are reclaimed immediately, which keeps memory
        flat across a sifting session.
        """
        j = i + 1
        level, low, high = self._level, self._low, self._high
        x_nodes = members.get(i, set())
        y_nodes = members.get(j, set())
        # Both levels leave the unique table; everything re-enters below
        # under its post-swap key.
        for idx in x_nodes:
            self._ut_delete(i, low[idx], high[idx])
        for idx in y_nodes:
            self._ut_delete(j, low[idx], high[idx])
        # Lower-level nodes keep their children and move up one level
        # (their variable now sits at level i).
        for idx in y_nodes:
            level[idx] = i
            self._ut_insert(i, low[idx], high[idx], idx)
        new_i = set(y_nodes)
        new_j: Set[int] = set()
        members[i] = new_i
        members[j] = new_j
        # Upper-level nodes independent of the swapped variable move down
        # unchanged; the rest are rewired in place.
        rewire: List[int] = []
        for idx in x_nodes:
            if (low[idx] >> 1) in y_nodes or (high[idx] >> 1) in y_nodes:
                rewire.append(idx)
            else:
                level[idx] = j
                assert self._ut_find(j, low[idx], high[idx]) < 0
                self._ut_insert(j, low[idx], high[idx], idx)
                new_j.add(idx)
        for idx in rewire:
            e0, e1 = low[idx], high[idx]  # e1 is regular (invariant)
            i0, i1 = e0 >> 1, e1 >> 1
            if i0 in y_nodes:
                c0 = e0 & 1
                f00, f01 = low[i0] ^ c0, high[i0] ^ c0
            else:
                f00 = f01 = e0
            if i1 in y_nodes:
                f10, f11 = low[i1], high[i1]
            else:
                f10 = f11 = e1
            h0 = self._swap_mk(j, f00, f10, parents, new_j)
            h1 = self._swap_mk(j, f01, f11, parents, new_j)
            # f11 is a stored high edge (or e1 itself), hence regular —
            # so h1 is regular and idx keeps its canonical stored form.
            low[idx] = h0
            high[idx] = h1
            assert self._ut_find(i, h0, h1) < 0
            self._ut_insert(i, h0, h1, idx)
            new_i.add(idx)
            parents[h0 >> 1] += 1
            parents[h1 >> 1] += 1
            parents[i0] -= 1
            parents[i1] -= 1
        # The two levels exchange variables.
        a, b = self._order[i], self._order[j]
        self._order[i], self._order[j] = b, a
        self._levels[a], self._levels[b] = j, i
        self._swaps += 1
        # Old lower-level nodes that lost their last parent (and carry no
        # external handle) are dead; reclaim them now.  The cascade can
        # only reach strictly deeper nodes, whose other parents keep them
        # alive in the common case.
        refcount = self._refcount
        free = self._free
        stack = [
            idx
            for idx in y_nodes
            if parents[idx] == 0 and not refcount[idx]
        ]
        while stack:
            idx = stack.pop()
            lv = level[idx]
            self._ut_delete(lv, low[idx], high[idx])
            members[lv].discard(idx)
            for child_edge in (low[idx], high[idx]):
                child = child_edge >> 1
                if child:
                    parents[child] -= 1
                    if parents[child] == 0 and not refcount[child]:
                        stack.append(child)
            level[idx] = _FREE_LEVEL
            free.append(idx)

    def swap(self, level: int) -> None:
        """Swap adjacent variable levels ``level`` and ``level + 1`` in
        place (the primitive under :meth:`sift_inplace`).

        Only nodes on the two affected levels are *rewired*; every
        pre-existing node index keeps denoting the same Boolean function,
        so live :class:`Ref` handles remain valid without remapping.  All
        operation memo tables are dropped: restrict/exists entries are
        keyed on levels whose meaning just changed, and reclaimed indices
        may be reused.

        Note the per-call overhead: this public convenience rebuilds the
        parent-count/membership context with one O(nodes) sweep and
        clears the memo tables each time.  A custom schedule of many
        swaps should go through :meth:`sift_inplace` (or its
        ``variables`` restriction), which shares one context across the
        whole session.

        Raises:
            VariableError: If ``level`` is not an adjacent pair start.
        """
        if not 0 <= level < len(self._order) - 1:
            raise VariableError(
                f"no adjacent level pair at {level} "
                f"(have {len(self._order)} variables)"
            )
        parents, members = self._reorder_context()
        self._swap_adjacent(level, parents, members)
        self.clear_caches()

    def move_to_level(self, name: str, level: int) -> None:
        """Move ``name`` to position ``level`` via in-place adjacent
        swaps; variables in between shift one position toward the
        vacated slot.

        Like :meth:`swap`, every pre-existing node index keeps denoting
        the same Boolean function, so live :class:`Ref` handles stay
        valid.  Moving a variable with no nodes (e.g. a placeholder the
        splice path just declared) only relabels the levels it crosses
        — no node is rewired — which is what makes "declare at the end,
        park where it belongs" a cheap idiom.  A no-op move keeps all
        memo tables; a real one drops them (they are keyed on levels).

        Raises:
            VariableError: If ``name`` is undeclared or ``level`` is out
                of range.
        """
        current = self._levels.get(name)
        if current is None:
            raise VariableError(f"cannot move undeclared variable {name!r}")
        if not 0 <= level < len(self._order):
            raise VariableError(
                f"target level {level} out of range "
                f"(have {len(self._order)} variables)"
            )
        if current == level:
            return
        parents, members = self._reorder_context()
        while current > level:
            self._swap_adjacent(current - 1, parents, members)
            current -= 1
        while current < level:
            self._swap_adjacent(current, parents, members)
            current += 1
        self.clear_caches()

    def sift_inplace(
        self,
        *,
        max_rounds: int = 2,
        max_growth: float = 1.2,
        variables: Optional[Sequence[str]] = None,
        lower_bound: bool = True,
        order_by_size: bool = False,
    ) -> int:
        """Rudell's sifting (ICCAD'93) on the in-place swap primitive.

        Each variable in turn is moved through every position of the
        order via adjacent swaps — nearer end first, then the other end —
        and parked at the best position seen.  Rounds repeat until no
        variable improves the total or ``max_rounds`` is exhausted.
        Unlike the rebuild-based search this never reconstructs the BDD:
        a full sift of n variables costs O(n) swaps per variable, each
        touching two levels only.

        A :meth:`collect` runs first so the size metric counts live nodes
        only, and swaps reclaim nodes that die under them, so memory
        stays flat for the whole session.

        Args:
            max_rounds: Maximum number of passes over all variables.
            max_growth: Abort a direction once the total grows past this
                factor of the variable's starting size (Rudell's
                ``maxGrowth``).
            variables: Restrict sifting to these variables (default:
                all).  Useful when part of the order is pinned by an
                external contract (e.g. primed-copy pairing).
                Undeclared names raise ``VariableError`` (consistent
                with every other name-taking manager API).
            lower_bound: Stop a direction early when even deleting every
                node of the sifted variable could not beat the best size
                seen (cheap version of CUDD's lower bound; exact for the
                give-up decision, heuristic in that later positions could
                in principle shrink other levels).
            order_by_size: Process variables most-populated-first
                (Rudell's original schedule; prunes more aggressively on
                big managers).  The default processes them in the current
                variable order, which follows the search trajectory of
                the historical rebuild-based ``sift`` closely — hill
                climbing is path-dependent, so this is what keeps the
                results comparable to (and on the reference trees no
                larger than) the rebuild search, as the benchmark gate
                checks *empirically*; with pruning active there is no
                universal never-larger guarantee.

        Returns:
            The live node count after sifting.
        """
        n = len(self._order)
        if n < 2:
            return self.node_count()
        self.collect()
        self.clear_caches()
        parents, members = self._reorder_context()
        self._sift_runs += 1
        for _ in range(max_rounds):
            improved = False
            if variables is None:
                candidates = list(self._order)
            else:
                known = set(self._order)
                unknown = [v for v in variables if v not in known]
                if unknown:
                    raise VariableError(
                        f"cannot sift undeclared variables: {unknown!r}"
                    )
                candidates = list(dict.fromkeys(variables))
            if order_by_size:
                # Rudell's schedule: most populated variables first.
                candidates.sort(
                    key=lambda v: -len(members.get(self._levels[v], ()))
                )
            for name in candidates:
                # Governed safe point between whole variables: a trip
                # here leaves the order mid-sift but every invariant
                # intact (swaps are atomic; the session context is
                # discarded with the abort).
                self._governed_point(self.node_count())
                before = self.node_count()
                self._sift_one(name, parents, members, max_growth, lower_bound)
                if self.node_count() < before:
                    improved = True
            if not improved:
                break
        self.clear_caches()
        return self.node_count()

    def _sift_one(
        self,
        name: str,
        parents: List[int],
        members: Dict[int, Set[int]],
        max_growth: float,
        lower_bound: bool,
    ) -> None:
        """Move ``name`` through the order and park it at the best
        position seen (one step of Rudell sifting)."""
        n = len(self._order)
        lvl = self._levels[name]
        size = self.node_count()
        best_size, best_lvl = size, lvl
        limit = max(int(size * max_growth), size + 2)

        def run(direction: int, stop: int) -> None:
            nonlocal lvl, size, best_size, best_lvl
            while lvl != stop:
                at = lvl if direction > 0 else lvl - 1
                self._swap_adjacent(at, parents, members)
                lvl += direction
                size = self.node_count()
                # Between whole swaps the store is consistent: a
                # governed abort here skips the park-back but leaves a
                # valid (if unoptimised) order behind.
                self._governed_point(size)
                if size < best_size:
                    best_size, best_lvl = size, lvl
                if size > limit:
                    break
                if (
                    lower_bound
                    and size - len(members.get(lvl, ())) >= best_size
                ):
                    break

        if lvl <= n - 1 - lvl:  # nearer the top: explore upwards first
            run(-1, 0)
            run(+1, n - 1)
        else:
            run(+1, n - 1)
            run(-1, 0)
        # Park the variable at the best position seen.
        while lvl < best_lvl:
            self._swap_adjacent(lvl, parents, members)
            lvl += 1
        while lvl > best_lvl:
            self._swap_adjacent(lvl - 1, parents, members)
            lvl -= 1
