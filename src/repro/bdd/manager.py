"""Hash-consed ROBDD manager: unique table, Apply, Restrict, Compose, Rename.

This is the computational substrate of the whole library (paper Sec. V-A).
The manager owns a totally ordered set of named variables (Def. 5 requires
``Vars`` to carry a total order ``<``) and guarantees the three ROBDD
invariants:

* *ordered* — on every root-to-terminal path variables appear in strictly
  increasing level order (``mk`` enforces ``level < child levels``);
* *reduced* — no node has identical children (``mk`` short-circuits) and no
  two distinct nodes share ``(level, low, high)`` (the unique table);
* exactly two terminals ``0`` and ``1``.

Because reduction is maintained incrementally by ``mk``, the textbook
``Apply``+``Reduce`` pipeline referenced by the paper (Ben-Ari Algs. 5.15 and
5.3) collapses into the single memoised :meth:`BDDManager.apply`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ManagerMismatchError, VariableError
from .node import TERMINAL_LEVEL, Node

#: Binary Boolean connectives supported by :meth:`BDDManager.apply`.
_OPS: Dict[str, Callable[[bool, bool], bool]] = {
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "xor": lambda a, b: a != b,
    "xnor": lambda a, b: a == b,
    "nand": lambda a, b: not (a and b),
    "nor": lambda a, b: not (a or b),
    "implies": lambda a, b: (not a) or b,
}

#: Connectives for which ``apply(op, u, v) == apply(op, v, u)``; their cache
#: keys are normalised so both argument orders hit the same entry.
_COMMUTATIVE = frozenset({"and", "or", "xor", "xnor", "nand", "nor"})

_manager_counter = itertools.count()


@dataclass
class OperationCacheStats:
    """Hit/miss counters for the manager's memo tables.

    A *miss* is a recursive call that had to compute its result; a *hit*
    found it in the memo table.  Terminal short-circuits (e.g.
    ``and(0, x)``) never consult a cache and count as neither.  The
    counters only ever grow, so callers can snapshot/diff them to
    attribute work to a batch of queries.
    """

    apply_hits: int = 0
    apply_misses: int = 0
    ite_hits: int = 0
    ite_misses: int = 0
    negate_hits: int = 0
    negate_misses: int = 0
    restrict_hits: int = 0
    restrict_misses: int = 0

    @property
    def hits(self) -> int:
        """Total memo-table hits across all operations."""
        return self.apply_hits + self.ite_hits + self.negate_hits + self.restrict_hits

    @property
    def misses(self) -> int:
        """Total memo-table misses across all operations."""
        return (
            self.apply_misses
            + self.ite_misses
            + self.negate_misses
            + self.restrict_misses
        )

    @property
    def hit_ratio(self) -> float:
        """``hits / (hits + misses)``, or 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (per-op counters plus the totals)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["hits"] = self.hits
        data["misses"] = self.misses
        return data

    def delta(self, earlier: "OperationCacheStats") -> Dict[str, int]:
        """Counter increments since ``earlier`` (an older snapshot view)."""
        return {
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        }

    def copy(self) -> "OperationCacheStats":
        return OperationCacheStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )


class BDDManager:
    """Factory and owner of ROBDD nodes over a named, totally ordered
    variable set.

    Args:
        variables: Initial variable names, in order (level 0 first).

    Example:
        >>> m = BDDManager(["a", "b"])
        >>> f = m.or_(m.var("a"), m.var("b"))
        >>> m.evaluate(f, {"a": False, "b": True})
        True
    """

    def __init__(self, variables: Iterable[str] = ()) -> None:
        self._id = next(_manager_counter)
        self._order: List[str] = []
        self._levels: Dict[str, int] = {}
        self._uid_counter = itertools.count()
        self.false = self._make_terminal(False)
        self.true = self._make_terminal(True)
        # Unique table: (level, low uid, high uid) -> Node.
        self._unique: Dict[Tuple[int, int, int], Node] = {}
        # Memo tables.  They are kept per-operation so clearing one kind of
        # cache (e.g. after reordering) does not touch the others.
        self._apply_cache: Dict[Tuple[str, int, int], Node] = {}
        self._ite_cache: Dict[Tuple[int, int, int], Node] = {}
        self._negate_cache: Dict[int, Node] = {}
        self._restrict_cache: Dict[Tuple[int, int, bool], Node] = {}
        self._exists_cache: Dict[Tuple[int, frozenset], Node] = {}
        self._support_cache: Dict[int, frozenset] = {}
        #: Hit/miss counters for the memo tables above (monotone).
        self.op_stats = OperationCacheStats()
        for name in variables:
            self.declare(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def declare(self, *names: str) -> None:
        """Append ``names`` (in the given order) to the variable order.

        Raises:
            VariableError: If a name is already declared or empty.
        """
        for name in names:
            if not name:
                raise VariableError("variable names must be non-empty")
            if name in self._levels:
                raise VariableError(f"variable {name!r} already declared")
            self._levels[name] = len(self._order)
            self._order.append(name)

    @property
    def variables(self) -> Tuple[str, ...]:
        """The current variable order, level 0 first."""
        return tuple(self._order)

    def level_of(self, name: str) -> int:
        """Level (order position) of variable ``name``."""
        try:
            return self._levels[name]
        except KeyError:
            raise VariableError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Variable name at ``level``."""
        try:
            return self._order[level]
        except IndexError:
            raise VariableError(f"no variable at level {level}") from None

    def var(self, name: str) -> Node:
        """Elementary BDD ``B(v)`` with ``Low = 0`` and ``High = 1``
        (the building block of Def. 6)."""
        return self.mk(self.level_of(name), self.false, self.true)

    def nvar(self, name: str) -> Node:
        """Elementary negated BDD for ``not name``."""
        return self.mk(self.level_of(name), self.true, self.false)

    def constant(self, value: bool) -> Node:
        """The ``0`` or ``1`` terminal."""
        return self.true if value else self.false

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _make_terminal(self, value: bool) -> Node:
        return Node(
            uid=next(self._uid_counter),
            level=TERMINAL_LEVEL,
            low=None,
            high=None,
            value=value,
            manager_id=self._id,
        )

    def mk(self, level: int, low: Node, high: Node) -> Node:
        """Return the unique reduced node ``(level, low, high)``.

        Applies both reduction rules: identical children collapse to the
        child, and structurally equal nodes are shared via the unique table.

        Raises:
            VariableError: If the node would violate the variable order.
        """
        if low is high:
            return low
        if not level < low.level or not level < high.level:
            raise VariableError(
                f"node at level {level} must precede its children "
                f"(levels {low.level}, {high.level})"
            )
        key = (level, low.uid, high.uid)
        node = self._unique.get(key)
        if node is None:
            node = Node(
                uid=next(self._uid_counter),
                level=level,
                low=low,
                high=high,
                value=None,
                manager_id=self._id,
            )
            self._unique[key] = node
        return node

    def _check_owned(self, *nodes: Node) -> None:
        for node in nodes:
            if node.manager_id != self._id:
                raise ManagerMismatchError(
                    "combining nodes that belong to different BDD managers"
                )

    # ------------------------------------------------------------------
    # Boolean combinators (Apply + implicit Reduce)
    # ------------------------------------------------------------------

    def apply(self, op: str, u: Node, v: Node) -> Node:
        """Ben-Ari's ``Apply`` with memoisation; result is reduced by
        construction.

        Args:
            op: One of ``and or xor xnor nand nor implies``.
            u: Left operand.
            v: Right operand.
        """
        try:
            fn = _OPS[op]
        except KeyError:
            raise ValueError(f"unknown BDD operator {op!r}") from None
        self._check_owned(u, v)
        return self._apply(op, fn, u, v)

    def _apply(self, op: str, fn: Callable[[bool, bool], bool], u: Node, v: Node) -> Node:
        # Terminal short-cuts keep the recursion (and the cache) small.
        if u.is_terminal and v.is_terminal:
            return self.constant(fn(u.value, v.value))
        if op == "and":
            if u is self.false or v is self.false:
                return self.false
            if u is self.true:
                return v
            if v is self.true:
                return u
            if u is v:
                return u
        elif op == "or":
            if u is self.true or v is self.true:
                return self.true
            if u is self.false:
                return v
            if v is self.false:
                return u
            if u is v:
                return u
        elif op == "xor":
            if u is self.false:
                return v
            if v is self.false:
                return u
            if u is v:
                return self.false
        elif op == "implies":
            if u is self.false or v is self.true:
                return self.true
            if u is self.true:
                return v

        if op in _COMMUTATIVE and u.uid > v.uid:
            u, v = v, u
        key = (op, u.uid, v.uid)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.op_stats.apply_hits += 1
            return cached
        self.op_stats.apply_misses += 1

        top = min(u.level, v.level)
        u_low, u_high = (u.low, u.high) if u.level == top else (u, u)
        v_low, v_high = (v.low, v.high) if v.level == top else (v, v)
        result = self.mk(
            top,
            self._apply(op, fn, u_low, v_low),
            self._apply(op, fn, u_high, v_high),
        )
        self._apply_cache[key] = result
        return result

    def and_(self, u: Node, v: Node) -> Node:
        """Conjunction of two BDDs."""
        return self.apply("and", u, v)

    def or_(self, u: Node, v: Node) -> Node:
        """Disjunction of two BDDs."""
        return self.apply("or", u, v)

    def xor(self, u: Node, v: Node) -> Node:
        """Exclusive or of two BDDs."""
        return self.apply("xor", u, v)

    def implies(self, u: Node, v: Node) -> Node:
        """Implication ``u => v``."""
        return self.apply("implies", u, v)

    def equiv(self, u: Node, v: Node) -> Node:
        """Bi-implication ``u <=> v``."""
        return self.apply("xnor", u, v)

    def conjoin(self, nodes: Iterable[Node]) -> Node:
        """AND of arbitrarily many BDDs (empty conjunction is ``1``)."""
        result = self.true
        for node in nodes:
            result = self.and_(result, node)
        return result

    def disjoin(self, nodes: Iterable[Node]) -> Node:
        """OR of arbitrarily many BDDs (empty disjunction is ``0``)."""
        result = self.false
        for node in nodes:
            result = self.or_(result, node)
        return result

    def negate(self, u: Node) -> Node:
        """Complement a BDD (swap its terminals)."""
        self._check_owned(u)
        if u.is_terminal:
            return self.constant(not u.value)
        cached = self._negate_cache.get(u.uid)
        if cached is not None:
            self.op_stats.negate_hits += 1
            return cached
        self.op_stats.negate_misses += 1
        result = self.mk(u.level, self.negate(u.low), self.negate(u.high))
        self._negate_cache[u.uid] = result
        # Negation is an involution; prime the cache both ways.
        self._negate_cache[result.uid] = u
        return result

    def ite(self, cond: Node, then: Node, other: Node) -> Node:
        """If-then-else ``(cond and then) or (not cond and other)`` as a
        *ternary apply*.

        A single memoised recursion over the three operands (Brace,
        Rudell & Bryant's ``ITE``) instead of the two-``and``/one-``or``
        composition: one cache lookup per co-factor triple, no
        intermediate BDDs, and one shared memo table that every caller
        (``compose``, ``threshold``, the service layer) amortises.
        """
        self._check_owned(cond, then, other)
        return self._ite(cond, then, other)

    def _ite(self, f: Node, g: Node, h: Node) -> Node:
        # Terminal and absorption rules keep the recursion shallow.
        if f is self.true:
            return g
        if f is self.false:
            return h
        if g is h:
            return g
        if g is self.true and h is self.false:
            return f
        if g is self.false and h is self.true:
            return self.negate(f)
        # ite(f, f, h) == ite(f, 1, h); ite(f, g, f) == ite(f, g, 0).
        if f is g:
            g = self.true
        if f is h:
            h = self.false

        key = (f.uid, g.uid, h.uid)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.op_stats.ite_hits += 1
            return cached
        self.op_stats.ite_misses += 1

        top = min(f.level, g.level, h.level)
        f_low, f_high = (f.low, f.high) if f.level == top else (f, f)
        g_low, g_high = (g.low, g.high) if g.level == top else (g, g)
        h_low, h_high = (h.low, h.high) if h.level == top else (h, h)
        result = self.mk(
            top,
            self._ite(f_low, g_low, h_low),
            self._ite(f_high, g_high, h_high),
        )
        self._ite_cache[key] = result
        return result

    def threshold(self, operands: Sequence[Node], k: int) -> Node:
        """BDD for "at least ``k`` of ``operands`` hold".

        Implements the VOT(k/N) semantics of Def. 2 / Def. 6 by dynamic
        programming over partial counts instead of the exponential
        disjunction-of-subsets expansion, which it is equivalent to.
        """
        n = len(operands)
        if k <= 0:
            return self.true
        if k > n:
            return self.false
        # rows[j] = BDD for "at least j of the operands seen so far hold",
        # folded right-to-left.
        rows: List[Node] = [self.true] + [self.false] * k
        for operand in reversed(operands):
            new_rows = [self.true]
            for j in range(1, k + 1):
                new_rows.append(self.ite(operand, rows[j - 1], rows[j]))
            rows = new_rows
        return rows[k]

    # ------------------------------------------------------------------
    # Restrict / Compose / Rename
    # ------------------------------------------------------------------

    def restrict(self, u: Node, name: str, value: bool) -> Node:
        """Ben-Ari's ``Restrict``: fix variable ``name`` to ``value``.

        This implements the BFL evidence operator ``phi[e -> value]``
        (Algorithm 1).
        """
        self._check_owned(u)
        return self._restrict(u, self.level_of(name), value)

    def _restrict(self, u: Node, level: int, value: bool) -> Node:
        if u.level > level:
            # Terminals and nodes below `level` cannot mention the variable.
            return u
        key = (u.uid, level, value)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            self.op_stats.restrict_hits += 1
            return cached
        self.op_stats.restrict_misses += 1
        if u.level == level:
            result = u.high if value else u.low
        else:
            result = self.mk(
                u.level,
                self._restrict(u.low, level, value),
                self._restrict(u.high, level, value),
            )
        self._restrict_cache[key] = result
        return result

    def restrict_many(self, u: Node, assignment: Mapping[str, bool]) -> Node:
        """Restrict several variables at once."""
        result = u
        for name, value in assignment.items():
            result = self.restrict(result, name, value)
        return result

    def compose(self, u: Node, name: str, g: Node) -> Node:
        """Substitute BDD ``g`` for variable ``name`` in ``u``
        (Shannon expansion: ``ite(g, u[name:=1], u[name:=0])``)."""
        self._check_owned(u, g)
        return self.ite(
            g, self.restrict(u, name, True), self.restrict(u, name, False)
        )

    def rename(self, u: Node, mapping: Mapping[str, str]) -> Node:
        """Rename variables (the paper's ``B[V -> V']`` primed copy).

        The mapping must be *monotone*: if ``a`` is ordered before ``b`` then
        ``mapping[a]`` must be ordered before ``mapping[b]``.  Monotone
        renaming preserves the BDD shape, so it is a linear-time rebuild.
        Use :meth:`compose` repeatedly for non-monotone substitutions.

        Raises:
            VariableError: If the mapping is not monotone.
        """
        self._check_owned(u)
        level_map: Dict[int, int] = {
            self.level_of(src): self.level_of(dst) for src, dst in mapping.items()
        }
        pairs = sorted(level_map.items())
        for (_, prev_dst), (_, next_dst) in zip(pairs, pairs[1:]):
            if prev_dst >= next_dst:
                raise VariableError(
                    "rename mapping must preserve the variable order"
                )
        cache: Dict[int, Node] = {}
        return self._rename(u, level_map, cache)

    def _rename(self, u: Node, level_map: Dict[int, int], cache: Dict[int, Node]) -> Node:
        if u.is_terminal:
            return u
        cached = cache.get(u.uid)
        if cached is not None:
            return cached
        new_level = level_map.get(u.level, u.level)
        result = self.mk(
            new_level,
            self._rename(u.low, level_map, cache),
            self._rename(u.high, level_map, cache),
        )
        cache[u.uid] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, u: Node) -> Set[str]:
        """``VarB``: the set of variables occurring in the BDD.

        On a reduced BDD this is exactly the set of variables the function
        *depends on*, which is why Algorithm 1 may implement ``IDP`` via
        support intersection.
        """
        self._check_owned(u)
        return {self.name_of(level) for level in self._support_levels(u)}

    def _support_levels(self, u: Node) -> frozenset:
        if u.is_terminal:
            return frozenset()
        cached = self._support_cache.get(u.uid)
        if cached is not None:
            return cached
        result = (
            frozenset({u.level})
            | self._support_levels(u.low)
            | self._support_levels(u.high)
        )
        self._support_cache[u.uid] = result
        return result

    def evaluate(self, u: Node, assignment: Mapping[str, bool]) -> bool:
        """Walk from the root following ``assignment`` (Algorithm 2's loop).

        Variables missing from ``assignment`` may only be skipped if the BDD
        does not branch on them.

        Raises:
            KeyError: If the walk reaches a variable not in ``assignment``.
        """
        self._check_owned(u)
        node = u
        while not node.is_terminal:
            name = self.name_of(node.level)
            node = node.high if assignment[name] else node.low
        return bool(node.value)

    def sat_count(self, u: Node, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over the variables ``over``
        (default: the manager's full variable set)."""
        self._check_owned(u)
        names = list(over) if over is not None else list(self._order)
        levels = sorted(self.level_of(name) for name in names)
        position = {level: i for i, level in enumerate(levels)}
        n = len(levels)
        cache: Dict[int, int] = {}

        def count(node: Node, from_pos: int) -> int:
            # Number of assignments to levels[from_pos:] under `node`.
            if node.is_terminal:
                return (2 ** (n - from_pos)) if node.value else 0
            if node.level not in position:
                raise VariableError(
                    f"BDD mentions {self.name_of(node.level)!r}, "
                    "which is outside the counting scope"
                )
            pos = position[node.level]
            key = node.uid
            cached = cache.get(key)
            if cached is None:
                cached = count(node.low, pos + 1) + count(node.high, pos + 1)
                cache[key] = cached
            return cached * 2 ** (pos - from_pos)

        return count(u, 0)

    def node_count(self) -> int:
        """Total number of live nodes in the unique table (plus terminals)."""
        return len(self._unique) + 2

    def cache_stats(self) -> Dict[str, int]:
        """Operation-cache counters plus current table sizes.

        The hit/miss counters are :attr:`op_stats` (monotone for the
        manager's lifetime, even across :meth:`clear_caches`); the
        ``*_cache_size`` entries are the live memo-table populations.
        """
        data = self.op_stats.snapshot()
        data["apply_cache_size"] = len(self._apply_cache)
        data["ite_cache_size"] = len(self._ite_cache)
        data["negate_cache_size"] = len(self._negate_cache)
        data["restrict_cache_size"] = len(self._restrict_cache)
        data["unique_table_size"] = len(self._unique)
        return data

    def clear_caches(self) -> None:
        """Drop all operation memo tables (the unique table is kept)."""
        self._apply_cache.clear()
        self._ite_cache.clear()
        self._negate_cache.clear()
        self._restrict_cache.clear()
        self._exists_cache.clear()
        self._support_cache.clear()
