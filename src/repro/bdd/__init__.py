"""From-scratch ROBDD engine (the paper's Sec. V substrate).

Public surface:

* :class:`BDDManager` / :class:`Ref` — complement-edge reduced ordered
  BDDs (integer-handle kernel) with Apply, Restrict, Compose, Rename and
  inspection helpers; ``Node`` remains as a deprecated alias of ``Ref``;
* :mod:`quantify <repro.bdd.quantify>` — existential/universal quantification
  (textbook and one-pass variants);
* :mod:`allsat <repro.bdd.allsat>` — cube and total-model enumeration
  (Algorithm 3);
* :mod:`minimal <repro.bdd.minimal>` — minimal/maximal satisfying vectors
  (the MCS/MPS machinery of Algorithm 1);
* :mod:`ordering <repro.bdd.ordering>` / :mod:`reorder <repro.bdd.reorder>` —
  static variable-ordering heuristics (sifting seeds), manager-to-manager
  transfer, and Rudell sifting on the in-place swap kernel (the
  historical rebuild-based search survives as ``sift_rebuild``);
* :mod:`dot <repro.bdd.dot>` — Graphviz export.
"""

from .allsat import all_models, any_model, count_cubes, iter_cubes, iter_models
from .dot import to_dot
from .manager import (
    BDDManager,
    OperationCacheStats,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
)
from .minimal import (
    is_monotone,
    maximal_assignments,
    maximal_assignments_monotone,
    maximal_assignments_monotone_restrict,
    minimal_assignments,
    minimal_assignments_monotone,
    minimal_assignments_monotone_restrict,
    prime_name,
)
from .ordering import HEURISTICS, bfs_order, dfs_order, random_order, weight_order
from .quantify import exists, exists_textbook, forall, is_satisfiable, is_tautology
from .ref import TERMINAL_LEVEL, Node, Ref
from .reorder import sift, sift_rebuild, transfer

__all__ = [
    "BDDManager",
    "Node",
    "Ref",
    "TERMINAL_LEVEL",
    "OperationCacheStats",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "all_models",
    "any_model",
    "count_cubes",
    "iter_cubes",
    "iter_models",
    "to_dot",
    "is_monotone",
    "maximal_assignments",
    "maximal_assignments_monotone",
    "maximal_assignments_monotone_restrict",
    "minimal_assignments",
    "minimal_assignments_monotone",
    "minimal_assignments_monotone_restrict",
    "prime_name",
    "HEURISTICS",
    "bfs_order",
    "dfs_order",
    "random_order",
    "weight_order",
    "exists",
    "exists_textbook",
    "forall",
    "is_satisfiable",
    "is_tautology",
    "sift",
    "sift_rebuild",
    "transfer",
]
