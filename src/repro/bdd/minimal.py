"""Minimal / maximal satisfying assignments of a BDD.

This module implements the heart of the paper's ``MCS``/``MPS`` operators
(Algorithm 1, last recursion rule)::

    BT(MCS(phi)) : BT(phi) and not exists V'. (V' < V  and  BT(phi)[V -> V'])

where ``V' < V  ==  (AND_k v'_k => v_k) and (OR_k v'_k != v_k)`` compares
status vectors by strict inclusion of their *failed* sets.

Two constructions are provided:

* the paper's **primed-relation** construction (general: works for any
  formula BDD), :func:`minimal_assignments` / :func:`maximal_assignments`;
* a **restriction-based** construction valid for monotone functions only
  (fault-tree structure functions are monotone), in the spirit of Rauzy's
  direct minimal-solution algorithms — one conjunction per variable, no
  primed copies: :func:`minimal_assignments_monotone` /
  :func:`maximal_assignments_monotone`.

Benchmark ``bench_mcs_algorithms`` compares the two; the test suite proves
them equivalent on monotone inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .manager import BDDManager
from .ref import Ref
from .quantify import exists

#: Suffix used to derive the primed copy of a variable name.
PRIME_SUFFIX = "__prime"


def prime_name(name: str) -> str:
    """Name of the primed copy of ``name`` (``V -> V'`` in the paper)."""
    return name + PRIME_SUFFIX


def ensure_primed(manager: BDDManager, scope: Sequence[str]) -> Dict[str, str]:
    """Declare (if needed) primed copies for ``scope``; return the mapping.

    Primed variables are appended to the end of the order in the same
    relative order as their originals, which keeps :meth:`BDDManager.rename`
    monotone.
    """
    declared = set(manager.variables)
    mapping: Dict[str, str] = {}
    for name in scope:
        primed = prime_name(name)
        if primed not in declared:
            manager.declare(primed)
            declared.add(primed)
        mapping[name] = primed
    return mapping


def strict_subset_relation(
    manager: BDDManager, scope: Sequence[str], mapping: Dict[str, str]
) -> Ref:
    """BDD for ``V' subset-of V`` over ``scope``:
    ``(AND v' => v) and (OR v' != v)``."""
    all_below = manager.conjoin(
        manager.implies(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    some_differ = manager.disjoin(
        manager.xor(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    return manager.and_(all_below, some_differ)


def strict_superset_relation(
    manager: BDDManager, scope: Sequence[str], mapping: Dict[str, str]
) -> Ref:
    """BDD for ``V' superset-of V`` over ``scope`` (the MPS dual)."""
    all_above = manager.conjoin(
        manager.implies(manager.var(name), manager.var(mapping[name]))
        for name in scope
    )
    some_differ = manager.disjoin(
        manager.xor(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    return manager.and_(all_above, some_differ)


def _relational_extreme(
    manager: BDDManager, u: Ref, scope: Sequence[str], superset: bool
) -> Ref:
    if not scope:
        return u
    mapping = ensure_primed(manager, scope)
    if superset:
        relation = strict_superset_relation(manager, scope, mapping)
    else:
        relation = strict_subset_relation(manager, scope, mapping)
    shifted = manager.rename(u, mapping)
    witness = exists(
        manager,
        manager.and_(relation, shifted),
        [mapping[name] for name in scope],
    )
    return manager.and_(u, manager.negate(witness))


def minimal_assignments(manager: BDDManager, u: Ref, scope: Sequence[str]) -> Ref:
    """Paper construction: satisfying vectors with no strictly smaller
    satisfying vector (comparison over ``scope``; other variables are
    untouched don't-cares)."""
    return _relational_extreme(manager, u, scope, superset=False)


def maximal_assignments(manager: BDDManager, u: Ref, scope: Sequence[str]) -> Ref:
    """Satisfying vectors with no strictly larger satisfying vector; this is
    the MPS-side construction (see DESIGN.md deviation 1)."""
    return _relational_extreme(manager, u, scope, superset=True)


def minimal_assignments_monotone(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """Monotone fast path: ``u and AND_x (not x or not u[x:=0])``.

    For a monotone ``u`` a vector is globally minimal iff no *single* failed
    bit can be cleared, which is what each conjunct states.
    """
    result = u
    for name in scope:
        off = manager.restrict(u, name, False)
        result = manager.and_(
            result, manager.or_(manager.nvar(name), manager.negate(off))
        )
    return result


def maximal_assignments_monotone(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """Monotone fast path for maximality: ``u and AND_x (x or not u[x:=1])``."""
    result = u
    for name in scope:
        on = manager.restrict(u, name, True)
        result = manager.and_(
            result, manager.or_(manager.var(name), manager.negate(on))
        )
    return result


def is_monotone(manager: BDDManager, u: Ref, scope: Iterable[str] = ()) -> bool:
    """True iff ``u`` is monotone (non-decreasing) in every scope variable.

    With an empty ``scope`` the BDD's own support is checked, which decides
    monotonicity of the represented function.
    """
    names: List[str] = list(scope) or sorted(manager.support(u))
    for name in names:
        off = manager.restrict(u, name, False)
        on = manager.restrict(u, name, True)
        if manager.implies(off, on) is not manager.true:
            return False
    return True
