"""Minimal / maximal satisfying assignments of a BDD.

This module implements the heart of the paper's ``MCS``/``MPS`` operators
(Algorithm 1, last recursion rule)::

    BT(MCS(phi)) : BT(phi) and not exists V'. (V' < V  and  BT(phi)[V -> V'])

where ``V' < V  ==  (AND_k v'_k => v_k) and (OR_k v'_k != v_k)`` compares
status vectors by strict inclusion of their *failed* sets.

Two constructions are provided:

* the paper's **primed-relation** construction (general: works for any
  formula BDD), :func:`minimal_assignments` / :func:`maximal_assignments`;
* a **single-pass minsol** construction intended for monotone functions
  (fault-tree structure functions are monotone), in the spirit of
  Rauzy's direct minimal-solution algorithms — one memoised recursion
  over the BDD, no primed copies: :func:`minimal_assignments_monotone` /
  :func:`maximal_assignments_monotone`.  The historical
  restrict+conjoin formulation is retained as the equivalence oracle
  (:func:`minimal_assignments_monotone_restrict` /
  :func:`maximal_assignments_monotone_restrict`); both build canonically
  identical BDDs for *any* input, monotone or not.

Benchmark ``bench_mcs_algorithms`` compares the two; the test suite proves
them equivalent on monotone inputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import VariableError
from .manager import _FALSE, _TRUE, BDDManager
from .ref import Ref
from .quantify import exists

#: Suffix used to derive the primed copy of a variable name.
PRIME_SUFFIX = "__prime"


def prime_name(name: str) -> str:
    """Name of the primed copy of ``name`` (``V -> V'`` in the paper)."""
    return name + PRIME_SUFFIX


def ensure_primed(manager: BDDManager, scope: Sequence[str]) -> Dict[str, str]:
    """Declare (if needed) primed copies for ``scope``; return the mapping.

    Primed variables are appended to the end of the order in the same
    relative order as their originals, which keeps :meth:`BDDManager.rename`
    monotone.
    """
    declared = set(manager.variables)
    mapping: Dict[str, str] = {}
    for name in scope:
        primed = prime_name(name)
        if primed not in declared:
            manager.declare(primed)
            declared.add(primed)
        mapping[name] = primed
    return mapping


def strict_subset_relation(
    manager: BDDManager, scope: Sequence[str], mapping: Dict[str, str]
) -> Ref:
    """BDD for ``V' subset-of V`` over ``scope``:
    ``(AND v' => v) and (OR v' != v)``."""
    all_below = manager.conjoin(
        manager.implies(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    some_differ = manager.disjoin(
        manager.xor(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    return manager.and_(all_below, some_differ)


def strict_superset_relation(
    manager: BDDManager, scope: Sequence[str], mapping: Dict[str, str]
) -> Ref:
    """BDD for ``V' superset-of V`` over ``scope`` (the MPS dual)."""
    all_above = manager.conjoin(
        manager.implies(manager.var(name), manager.var(mapping[name]))
        for name in scope
    )
    some_differ = manager.disjoin(
        manager.xor(manager.var(mapping[name]), manager.var(name))
        for name in scope
    )
    return manager.and_(all_above, some_differ)


def _substitute_fresh(
    manager: BDDManager, u: Ref, mapping: Dict[str, str]
) -> Ref:
    """Rename ``u``'s variables to fresh (independent) targets under *any*
    level order.

    :meth:`BDDManager.rename` is a linear-time rebuild but demands a
    monotone mapping; in-place dynamic reordering can legally break the
    interleaved original/primed layout, so the primed copy falls back to
    a Shannon-expansion rebuild (``ite(target, walk(high), walk(low))``)
    whenever the current order is no longer monotone.  Correct because
    every target variable is outside the support of ``u``.
    """
    try:
        return manager.rename(u, mapping)
    except VariableError:
        pass
    cache: Dict[int, Ref] = {}

    def walk(node: Ref) -> Ref:
        if node.is_terminal:
            return node
        cached = cache.get(node.uid)
        if cached is not None:
            return cached
        name = manager.name_of(node.level)
        target = manager.var(mapping.get(name, name))
        result = manager.ite(target, walk(node.high), walk(node.low))
        cache[node.uid] = result
        return result

    return walk(u)


def _relational_extreme(
    manager: BDDManager, u: Ref, scope: Sequence[str], superset: bool
) -> Ref:
    if not scope:
        return u
    mapping = ensure_primed(manager, scope)
    if superset:
        relation = strict_superset_relation(manager, scope, mapping)
    else:
        relation = strict_subset_relation(manager, scope, mapping)
    shifted = _substitute_fresh(manager, u, mapping)
    witness = exists(
        manager,
        manager.and_(relation, shifted),
        [mapping[name] for name in scope],
    )
    return manager.and_(u, manager.negate(witness))


def minimal_assignments(manager: BDDManager, u: Ref, scope: Sequence[str]) -> Ref:
    """Paper construction: satisfying vectors with no strictly smaller
    satisfying vector (comparison over ``scope``; other variables are
    untouched don't-cares)."""
    return _relational_extreme(manager, u, scope, superset=False)


def maximal_assignments(manager: BDDManager, u: Ref, scope: Sequence[str]) -> Ref:
    """Satisfying vectors with no strictly larger satisfying vector; this is
    the MPS-side construction (see DESIGN.md deviation 1)."""
    return _relational_extreme(manager, u, scope, superset=True)


def _extreme_monotone_e(
    manager: BDDManager,
    edge: int,
    scope_levels: Sequence[int],
    k: int,
    maximal: bool,
    memo: Dict[Tuple[int, int], int],
) -> int:
    """Single-pass Rauzy-style ``minsol`` recursion on raw kernel edges.

    Computes the same BDD as the restrict+conjoin constructions below, in
    one memoised sweep.  With ``u = x ? u1 : u0`` and ``x`` in scope::

        minsol(u) = x ? (minsol(u1) and not u0) : minsol(u0)
        maxsol(u) = x ? maxsol(u1) : (maxsol(u0) and not u1)

    Scope variables the BDD skips over (it does not branch on them) are
    forced to their extreme value — 0 for minimality, 1 for maximality —
    by a chain of fresh nodes above the recursive core; scope variables
    outside the sub-call's window (``scope_levels[k:]``) belong to an
    ancestor.  Memoised on ``(edge, k)``, so shared subgraphs are visited
    once instead of once per enclosing restrict as in the old
    construction.
    """
    key = (edge, k)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if edge == _FALSE:
        memo[key] = _FALSE
        return _FALSE
    top = manager._level[edge >> 1]
    nlev = len(scope_levels)
    j = k
    while j < nlev and scope_levels[j] < top:
        j += 1
    if edge == _TRUE:
        core = _TRUE
    else:
        index = edge >> 1
        c = edge & 1
        u0 = manager._low[index] ^ c
        u1 = manager._high[index] ^ c
        if j < nlev and scope_levels[j] == top:
            m0 = _extreme_monotone_e(
                manager, u0, scope_levels, j + 1, maximal, memo
            )
            m1 = _extreme_monotone_e(
                manager, u1, scope_levels, j + 1, maximal, memo
            )
            if maximal:
                core = manager._mk(top, manager._and_e(m0, u1 ^ 1), m1)
            else:
                core = manager._mk(top, m0, manager._and_e(m1, u0 ^ 1))
        else:
            core = manager._mk(
                top,
                _extreme_monotone_e(manager, u0, scope_levels, j, maximal, memo),
                _extreme_monotone_e(manager, u1, scope_levels, j, maximal, memo),
            )
    # Skipped scope variables: an extreme vector cannot waste a bit the
    # function ignores, so pin them (0 for minimal, 1 for maximal).
    for lvl in reversed(scope_levels[k:j]):
        if maximal:
            core = manager._mk(lvl, _FALSE, core)  # x and core
        else:
            core = manager._mk(lvl, core, _FALSE)  # (not x) and core
    memo[key] = core
    return core


def _extreme_monotone(
    manager: BDDManager, u: Ref, scope: Sequence[str], maximal: bool
) -> Ref:
    # Dedup: a repeated scope name contributes the same conjunct twice in
    # the restrict formulation (idempotent), so one visit per level keeps
    # the constructions identical — and the pin loop must never see the
    # same level twice.
    levels = sorted({manager.level_of(name) for name in scope})
    memo: Dict[Tuple[int, int], int] = {}
    return manager._wrap(
        _extreme_monotone_e(
            manager, manager._unwrap(u), levels, 0, maximal, memo
        )
    )


def minimal_assignments_monotone(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """Monotone fast path: ``u and AND_x (not x or not u[x:=0])``.

    For a monotone ``u`` a vector is globally minimal iff no *single* failed
    bit can be cleared, which is what each conjunct states.  Computed by
    the single-pass :func:`_extreme_monotone_e` recursion, which builds
    canonically the same BDD as the |scope| restrict+conjoin round-trips
    of :func:`minimal_assignments_monotone_restrict` (the test suite pins
    the identity) without materialising any of the intermediate
    conjunctions.
    """
    return _extreme_monotone(manager, u, scope, maximal=False)


def maximal_assignments_monotone(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """Monotone fast path for maximality: ``u and AND_x (x or not u[x:=1])``
    via the single-pass dual of :func:`minimal_assignments_monotone`."""
    return _extreme_monotone(manager, u, scope, maximal=True)


def minimal_assignments_monotone_restrict(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """The historical restrict+conjoin construction (one ``u[x:=0]``
    round-trip per scope variable), kept as the equivalence oracle for
    :func:`minimal_assignments_monotone`."""
    result = u
    for name in scope:
        off = manager.restrict(u, name, False)
        result = manager.and_(
            result, manager.or_(manager.nvar(name), manager.negate(off))
        )
    return result


def maximal_assignments_monotone_restrict(
    manager: BDDManager, u: Ref, scope: Sequence[str]
) -> Ref:
    """Restrict+conjoin oracle for :func:`maximal_assignments_monotone`."""
    result = u
    for name in scope:
        on = manager.restrict(u, name, True)
        result = manager.and_(
            result, manager.or_(manager.var(name), manager.negate(on))
        )
    return result


def is_monotone(manager: BDDManager, u: Ref, scope: Iterable[str] = ()) -> bool:
    """True iff ``u`` is monotone (non-decreasing) in every scope variable.

    With an empty ``scope`` the BDD's own support is checked, which decides
    monotonicity of the represented function.
    """
    names: List[str] = list(scope) or sorted(manager.support(u))
    for name in names:
        off = manager.restrict(u, name, False)
        on = manager.restrict(u, name, True)
        if manager.implies(off, on) is not manager.true:
            return False
    return True
