"""Opaque BDD handles over the complement-edge kernel.

A :class:`Ref` is the one public currency of the BDD engine: an immutable,
manager-interned handle for a Boolean function.  Internally the manager
stores nodes as integer indices into parallel arrays (``level``, ``low``,
``high``) and an *edge* is a tagged integer::

    edge = (node_index << 1) | complement_bit

The single stored terminal is the constant ``1`` at index 0; the constant
``0`` is its complemented edge.  Negating a function therefore flips one
bit of the handle — no traversal, no unique-table insertions (see
:meth:`repro.bdd.manager.BDDManager.negate`).

Because refs are interned per manager (one :class:`Ref` object per live
edge), identity comparison keeps working exactly as it did for the old
pointer-linked ``Node`` objects: two refs denote the same function iff
they are the same object.  The cofactor properties :attr:`Ref.low` /
:attr:`Ref.high` resolve complement bits on the fly, so traversals written
against the old API see an ordinary (uncomplemented) Shannon expansion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import BDDManager

#: Level assigned to the terminal.  It orders *after* every real variable
#: level so that the usual "smaller level is closer to the root" invariant
#: holds uniformly.
TERMINAL_LEVEL = 2**31


class Ref:
    """A manager-interned handle for one Boolean function.

    Attributes:
        manager: The owning :class:`~repro.bdd.manager.BDDManager`.
        edge: The tagged integer handle ``(index << 1) | complement``.

    Users never construct refs directly; they obtain them from a manager
    (``var``, ``apply``, ``ite``, ...).  All attributes are read-only in
    spirit: mutating a ref corrupts the manager's interning table.

    Refs participate in the kernel's garbage collector: the manager
    interns them weakly and keeps an external reference count per node
    index, decremented by a ``weakref.finalize`` hook when the last
    handle for an edge dies (hence the ``__weakref__`` slot).  A node is
    reclaimable exactly when no live Ref can reach it.
    """

    __slots__ = ("manager", "edge", "__weakref__")

    def __init__(self, manager: "BDDManager", edge: int) -> None:
        self.manager = manager
        self.edge = edge

    # ------------------------------------------------------------------
    # Handle anatomy
    # ------------------------------------------------------------------

    @property
    def index(self) -> int:
        """Index of the underlying stored node (0 is the terminal)."""
        return self.edge >> 1

    @property
    def complemented(self) -> bool:
        """True iff this handle carries the complement bit."""
        return bool(self.edge & 1)

    @property
    def uid(self) -> int:
        """Manager-unique integer identity of the *function* (the edge).

        Distinct functions have distinct uids; a function and its
        complement differ in the low bit.
        """
        return self.edge

    # ------------------------------------------------------------------
    # Semantic (complement-resolved) view
    # ------------------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        """True for the constants ``0`` and ``1``."""
        return (self.edge >> 1) == 0

    @property
    def value(self) -> Optional[bool]:
        """Boolean value of a constant; ``None`` for internal nodes."""
        if (self.edge >> 1) != 0:
            return None
        return not (self.edge & 1)

    @property
    def level(self) -> int:
        """Variable level, or :data:`TERMINAL_LEVEL` for the constants."""
        return self.manager._level[self.edge >> 1]

    @property
    def low(self) -> Optional["Ref"]:
        """Negative cofactor (variable = 0); ``None`` for the constants.

        Complement bits are resolved: this is the BDD of the function's
        actual cofactor, regardless of how the edge is stored.
        """
        index = self.edge >> 1
        if index == 0:
            return None
        manager = self.manager
        return manager._wrap(manager._low[index] ^ (self.edge & 1))

    @property
    def high(self) -> Optional["Ref"]:
        """Positive cofactor (variable = 1); ``None`` for the constants."""
        index = self.edge >> 1
        if index == 0:
            return None
        manager = self.manager
        return manager._wrap(manager._high[index] ^ (self.edge & 1))

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def __invert__(self) -> "Ref":
        """``~ref`` — the O(1) complement."""
        return self.manager.negate(self)

    def __hash__(self) -> int:
        return self.edge

    def __eq__(self, other: object) -> bool:
        # Interning makes equality coincide with identity.
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return f"<Ref {int(bool(self.value))}>"
        sign = "~" if self.complemented else ""
        return (
            f"<Ref {sign}n{self.edge >> 1} level={self.level} "
            f"low={self.low.uid} high={self.high.uid}>"
        )

    # ------------------------------------------------------------------
    # Traversal helpers (semantic DAG: one vertex per distinct function)
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Iterator["Ref"]:
        """Yield every distinct function reachable by cofactoring, once.

        This is the semantic expansion of the complement-edge DAG: it
        enumerates exactly the nodes the old pointer-linked representation
        materialised (both constants included when reachable).  Iterative
        depth-first traversal, so deep BDDs never hit the recursion limit.
        """
        manager = self.manager
        seen = {self.edge}
        stack = [self.edge]
        while stack:
            edge = stack.pop()
            yield manager._wrap(edge)
            index = edge >> 1
            if index == 0:
                continue
            c = edge & 1
            for child in (manager._low[index] ^ c, manager._high[index] ^ c):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)

    def count_nodes(self) -> int:
        """Number of distinct functions in the DAG rooted here (constants
        included) — the size of the equivalent complement-free ROBDD.

        Traverses raw edges without interning refs, so counting a large
        BDD (e.g. inside the sifting loop) allocates nothing persistent.
        """
        manager = self.manager
        seen = {self.edge}
        stack = [self.edge]
        while stack:
            edge = stack.pop()
            index = edge >> 1
            if index == 0:
                continue
            c = edge & 1
            for child in (manager._low[index] ^ c, manager._high[index] ^ c):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return len(seen)


#: Backwards-compatible alias for code written against the pre-refactor
#: ``Node`` API.  See DESIGN.md ("Node -> Ref migration").
Node = Ref
