"""Boolean quantification over BDD variables.

The paper (Sec. V-B) defines existential quantification via Ben-Ari's
``Apply`` and ``Restrict``::

    exists v. B = Restrict(B, v, 0)  or  Restrict(B, v, 1)
    exists {v1..vn}. B = exists v1. exists v2. ... exists vn. B

:func:`exists_textbook` implements exactly that definition; :func:`exists`
is an equivalent single-pass recursion that quantifies a whole variable set
at once (the standard optimisation).  Both are exercised against each other
in the test suite.
"""

from __future__ import annotations

from typing import Iterable

from .manager import BDDManager
from .node import Node


def exists_textbook(manager: BDDManager, u: Node, names: Iterable[str]) -> Node:
    """Existential quantification exactly as defined in the paper."""
    result = u
    for name in names:
        result = manager.or_(
            manager.restrict(result, name, False),
            manager.restrict(result, name, True),
        )
    return result


def exists(manager: BDDManager, u: Node, names: Iterable[str]) -> Node:
    """Existentially quantify all of ``names`` in one memoised pass."""
    levels = frozenset(manager.level_of(name) for name in names)
    if not levels:
        return u
    return _exists(manager, u, levels)


def _exists(manager: BDDManager, u: Node, levels: frozenset) -> Node:
    if u.is_terminal or u.level > max(levels):
        return u
    key = (u.uid, levels)
    cached = manager._exists_cache.get(key)
    if cached is not None:
        return cached
    low = _exists(manager, u.low, levels)
    high = _exists(manager, u.high, levels)
    if u.level in levels:
        result = manager.or_(low, high)
    else:
        result = manager.mk(u.level, low, high)
    manager._exists_cache[key] = result
    return result


def forall(manager: BDDManager, u: Node, names: Iterable[str]) -> Node:
    """Universal quantification: ``forall V. B == not exists V. not B``."""
    return manager.negate(exists(manager, manager.negate(u), names))


def is_tautology(manager: BDDManager, u: Node) -> bool:
    """True iff the BDD is the constant ``1`` (used for layer-2 ``forall``)."""
    return u is manager.true


def is_satisfiable(manager: BDDManager, u: Node) -> bool:
    """True iff the BDD is not the constant ``0`` (layer-2 ``exists``)."""
    return u is not manager.false
