"""Boolean quantification over BDD variables.

The paper (Sec. V-B) defines existential quantification via Ben-Ari's
``Apply`` and ``Restrict``::

    exists v. B = Restrict(B, v, 0)  or  Restrict(B, v, 1)
    exists {v1..vn}. B = exists v1. exists v2. ... exists vn. B

:func:`exists_textbook` implements exactly that definition; :func:`exists`
is an equivalent single-pass recursion that quantifies a whole variable set
at once (the standard optimisation).  Both are exercised against each other
in the test suite.

The single-pass variant runs on the manager's raw integer edges.  Unlike
negation or restriction, existential quantification does **not** commute
with complement (``exists v. ~f != ~exists v. f``), so its memo key is the
full tagged edge — complement bit included.
"""

from __future__ import annotations

from typing import Iterable

from .manager import BDDManager
from .ref import Ref


def exists_textbook(manager: BDDManager, u: Ref, names: Iterable[str]) -> Ref:
    """Existential quantification exactly as defined in the paper."""
    result = u
    for name in names:
        result = manager.or_(
            manager.restrict(result, name, False),
            manager.restrict(result, name, True),
        )
    return result


def exists(manager: BDDManager, u: Ref, names: Iterable[str]) -> Ref:
    """Existentially quantify all of ``names`` in one memoised pass."""
    levels = frozenset(manager.level_of(name) for name in names)
    edge = manager._unwrap(u)
    if not levels:
        return u
    # The level set is interned to a small integer so the computed
    # table can pack (edge, set) into one packed int key.
    sid = manager._exists_set_id(levels)
    return manager._wrap(_exists_e(manager, edge, levels, max(levels), sid))


def _exists_e(
    manager: BDDManager, edge: int, levels: frozenset, deepest: int, sid: int
) -> int:
    index = edge >> 1
    if index == 0 or manager._level[index] > deepest:
        return edge
    cached = manager._exists_get(edge, sid)
    if cached is not None:
        return cached
    c = edge & 1
    low = _exists_e(manager, manager._low[index] ^ c, levels, deepest, sid)
    high = _exists_e(manager, manager._high[index] ^ c, levels, deepest, sid)
    level = manager._level[index]
    if level in levels:
        result = manager._or_e(low, high)
    else:
        result = manager._mk(level, low, high)
    manager._exists_put(edge, sid, result)
    return result


def forall(manager: BDDManager, u: Ref, names: Iterable[str]) -> Ref:
    """Universal quantification: ``forall V. B == not exists V. not B``.

    Both negations are O(1) complement flips on the new kernel, so this
    costs exactly one ``exists`` sweep.
    """
    return manager.negate(exists(manager, manager.negate(u), names))


def is_tautology(manager: BDDManager, u: Ref) -> bool:
    """True iff the BDD is the constant ``1`` (used for layer-2 ``forall``)."""
    return u is manager.true


def is_satisfiable(manager: BDDManager, u: Ref) -> bool:
    """True iff the BDD is not the constant ``0`` (layer-2 ``exists``)."""
    return u is not manager.false
