"""Static reordering utilities: transfer between managers and sifting search.

The library's managers hash-cons immutable nodes, so instead of in-place
level swaps we *rebuild*: :func:`transfer` re-expresses a BDD inside another
manager (with any variable order) and :func:`sift` hill-climbs over orders by
rebuilding and measuring, in the spirit of Rudell's sifting.  Rebuilding is
quadratic in the worst case but entirely adequate at fault-tree scale, and
it keeps the core engine simple and immutable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .manager import BDDManager
from .ref import Ref

#: A builder takes a variable order and returns (manager, root) built in it.
Builder = Callable[[Sequence[str]], Tuple[BDDManager, Ref]]


def transfer(source: BDDManager, u: Ref, target: BDDManager) -> Ref:
    """Rebuild ``u`` (owned by ``source``) inside ``target``.

    Works for any pair of variable orders because it re-applies the Shannon
    expansion in the target manager: ``ite(x, transfer(high), transfer(low))``.
    All variables in the support of ``u`` must be declared in ``target``.
    """
    cache: Dict[int, Ref] = {}

    def walk(node: Ref) -> Ref:
        if node.is_terminal:
            return target.constant(bool(node.value))
        cached = cache.get(node.uid)
        if cached is not None:
            return cached
        name = source.name_of(node.level)
        result = target.ite(target.var(name), walk(node.high), walk(node.low))
        cache[node.uid] = result
        return result

    return walk(u)


def build_size(builder: Builder, order: Sequence[str]) -> int:
    """Node count of the BDD produced by ``builder`` under ``order``."""
    _, root = builder(order)
    return root.count_nodes()


def sift(
    builder: Builder,
    order: Sequence[str],
    max_rounds: int = 2,
) -> Tuple[List[str], int]:
    """Sifting-style search for a small BDD.

    One round moves each variable in turn to its best position (measuring by
    rebuilding); rounds repeat until no improvement or ``max_rounds``.

    Returns:
        ``(best_order, best_size)``.
    """
    current = list(order)
    best_size = build_size(builder, current)
    for _ in range(max_rounds):
        improved = False
        for name in list(current):
            base = [v for v in current if v != name]
            candidate_best = current
            candidate_size = best_size
            for position in range(len(base) + 1):
                candidate = base[:position] + [name] + base[position:]
                if candidate == current:
                    continue
                size = build_size(builder, candidate)
                if size < candidate_size:
                    candidate_best = candidate
                    candidate_size = size
            if candidate_size < best_size:
                current = list(candidate_best)
                best_size = candidate_size
                improved = True
        if not improved:
            break
    return current, best_size
