"""Reordering utilities: transfer between managers and sifting search.

:func:`transfer` re-expresses a BDD inside another manager (with any
variable order) by re-applying the Shannon expansion there; it remains
the tool for *static* order experiments and for cross-validating the
in-place machinery.

:func:`sift` is Rudell's sifting.  Until PR 3 it *rebuilt* the entire
BDD from scratch for every candidate position of every variable — O(n²)
full reconstructions.  It now drives
:meth:`~repro.bdd.manager.BDDManager.sift_inplace`, which moves one
variable at a time through the order with adjacent-level swaps that
rewire only the two affected levels.  The old rebuild-based search is
kept as :func:`sift_rebuild` — it is the baseline arm of
``benchmarks/bench_reorder_gc.py``, which gates the in-place variant at
a ≥5x speedup on the COVID tree.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .manager import BDDManager
from .ref import Ref

#: A builder takes a variable order and returns (manager, root) built in it.
Builder = Callable[[Sequence[str]], Tuple[BDDManager, Ref]]


def transfer(source: BDDManager, u: Ref, target: BDDManager) -> Ref:
    """Rebuild ``u`` (owned by ``source``) inside ``target``.

    Works for any pair of variable orders because it re-applies the Shannon
    expansion in the target manager: ``ite(x, transfer(high), transfer(low))``.
    All variables in the support of ``u`` must be declared in ``target``.
    """
    cache: Dict[int, Ref] = {}

    def walk(node: Ref) -> Ref:
        if node.is_terminal:
            return target.constant(bool(node.value))
        cached = cache.get(node.uid)
        if cached is not None:
            return cached
        name = source.name_of(node.level)
        result = target.ite(target.var(name), walk(node.high), walk(node.low))
        cache[node.uid] = result
        return result

    return walk(u)


def build_size(builder: Builder, order: Sequence[str]) -> int:
    """Node count of the BDD produced by ``builder`` under ``order``."""
    _, root = builder(order)
    return root.count_nodes()


def sift(
    builder: Builder,
    order: Sequence[str],
    max_rounds: int = 2,
) -> Tuple[List[str], int]:
    """Rudell sifting for a small BDD, on the in-place kernel.

    The BDD is built *once* under ``order``; every candidate position is
    then reached by adjacent-level swaps inside that manager (dead
    cofactor nodes are reclaimed as they arise, so memory stays flat).
    Same contract as the historical rebuild-based search: one round moves
    each variable in turn to its best position; rounds repeat until no
    improvement or ``max_rounds``.

    Returns:
        ``(best_order, best_size)`` where ``best_size`` counts the root's
        semantic DAG (both constants included), the same metric
        :func:`sift_rebuild` reports.
    """
    manager, root = builder(order)
    manager.sift_inplace(max_rounds=max_rounds)
    return list(manager.variables), root.count_nodes()


def sift_rebuild(
    builder: Builder,
    order: Sequence[str],
    max_rounds: int = 2,
) -> Tuple[List[str], int]:
    """The pre-PR-3 rebuild-based sifting search (benchmark baseline).

    One round moves each variable in turn to its best position, measuring
    every candidate order by rebuilding the whole BDD from scratch —
    O(n²) reconstructions per round.

    Returns:
        ``(best_order, best_size)``.
    """
    current = list(order)
    best_size = build_size(builder, current)
    for _ in range(max_rounds):
        improved = False
        for name in list(current):
            base = [v for v in current if v != name]
            candidate_best = current
            candidate_size = best_size
            for position in range(len(base) + 1):
                candidate = base[:position] + [name] + base[position:]
                if candidate == current:
                    continue
                size = build_size(builder, candidate)
                if size < candidate_size:
                    candidate_best = candidate
                    candidate_size = size
            if candidate_size < best_size:
                current = list(candidate_best)
                best_size = candidate_size
                improved = True
        if not improved:
            break
    return current, best_size
