"""Graphviz DOT export for BDDs (the diagrams of the paper's Figs. 3 et al.).

Solid edges are ``High`` (variable = 1), dashed edges are ``Low``
(variable = 0), matching the usual BDD drawing convention.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from .manager import BDDManager
from .ref import Ref


def to_dot(
    manager: BDDManager,
    u: Ref,
    name: str = "bdd",
    highlight_paths: Optional[Iterable[Mapping[str, bool]]] = None,
) -> str:
    """Render the BDD rooted at ``u`` as a DOT digraph.

    Args:
        manager: Owning manager.
        u: Root node.
        name: Graph name.
        highlight_paths: Optional assignments; edges on the path each
            assignment induces are drawn bold red (used to reproduce the
            highlighted walks of the paper's Examples 2 and 3).
    """
    bold = set()
    for assignment in highlight_paths or ():
        node = u
        while not node.is_terminal:
            var = manager.name_of(node.level)
            nxt = node.high if assignment[var] else node.low
            bold.add((node.uid, nxt.uid, bool(assignment[var])))
            node = nxt

    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    ranks: dict = {}
    for node in u.iter_nodes():
        if node.is_terminal:
            label = "1" if node.value else "0"
            lines.append(
                f'  n{node.uid} [shape=box, label="{label}"];'
            )
            continue
        var = manager.name_of(node.level)
        lines.append(f'  n{node.uid} [shape=circle, label="{var}"];')
        ranks.setdefault(node.level, []).append(node.uid)
        for child, is_high in ((node.low, False), (node.high, True)):
            style = "solid" if is_high else "dashed"
            attrs = [f"style={style}"]
            if (node.uid, child.uid, is_high) in bold:
                attrs.append("color=red")
                attrs.append("penwidth=2.0")
            lines.append(
                f"  n{node.uid} -> n{child.uid} [{', '.join(attrs)}];"
            )
    for level, uids in sorted(ranks.items()):
        same = "; ".join(f"n{uid}" for uid in uids)
        lines.append(f"  {{ rank=same; {same}; }}")
    lines.append("}")
    return "\n".join(lines)
