"""Variable-ordering heuristics for building fault-tree BDDs.

BDD size is notoriously sensitive to variable order (paper Sec. V-A); the
paper cites Bouissou's RAMS'96 ordering heuristic for fault trees.  This
module implements several static heuristics.  They are written against a
small structural protocol (``top``, ``children(name)``, ``is_basic(name)``)
so the BDD package stays independent of the fault-tree package;
:class:`repro.ft.tree.FaultTree` satisfies the protocol.

The ablation benchmark ``bench_ordering_ablation`` compares the resulting
BDD sizes on the COVID-19 tree and on random trees.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, List, Protocol, Sequence, Tuple


class TreeLike(Protocol):
    """Structural protocol the ordering heuristics need."""

    @property
    def top(self) -> str: ...

    def children(self, name: str) -> Tuple[str, ...]: ...

    def is_basic(self, name: str) -> bool: ...


def declaration_order(tree: TreeLike, basic_events: Sequence[str]) -> List[str]:
    """The order in which basic events were declared (the baseline)."""
    return list(basic_events)


def dfs_order(tree: TreeLike, basic_events: Sequence[str]) -> List[str]:
    """Top-down, left-to-right depth-first order (first occurrence wins).

    This is the classical "as encountered" heuristic, which tends to keep
    variables that interact in the same subtree close together.
    """
    order: List[str] = []
    seen = set()

    def visit(name: str) -> None:
        if tree.is_basic(name):
            if name not in seen:
                seen.add(name)
                order.append(name)
            return
        for child in tree.children(name):
            visit(child)

    visit(tree.top)
    # Shared DAGs may leave unreachable-from-top events (none in well-formed
    # trees, but be safe for partial structures).
    for name in basic_events:
        if name not in seen:
            order.append(name)
    return order


def bfs_order(tree: TreeLike, basic_events: Sequence[str]) -> List[str]:
    """Breadth-first (level) order from the top event."""
    order: List[str] = []
    seen = set()
    queue = deque([tree.top])
    visited = {tree.top}
    while queue:
        name = queue.popleft()
        if tree.is_basic(name):
            if name not in seen:
                seen.add(name)
                order.append(name)
            continue
        for child in tree.children(name):
            if child not in visited:
                visited.add(child)
                queue.append(child)
    for name in basic_events:
        if name not in seen:
            order.append(name)
    return order


def weight_order(tree: TreeLike, basic_events: Sequence[str]) -> List[str]:
    """Bouissou-inspired weight heuristic.

    Every occurrence of a basic event at depth ``d`` contributes ``2**-d``;
    events with larger total weight (shallow and/or repeated — the ones whose
    value constrains the function most) come first.  Ties fall back to DFS
    position, keeping the order deterministic.
    """
    weights: Dict[str, float] = {}

    def visit(name: str, depth: int) -> None:
        if tree.is_basic(name):
            weights[name] = weights.get(name, 0.0) + 2.0 ** (-depth)
            return
        for child in tree.children(name):
            visit(child, depth + 1)

    visit(tree.top, 0)
    dfs_pos = {name: i for i, name in enumerate(dfs_order(tree, basic_events))}
    return sorted(
        basic_events,
        key=lambda name: (-weights.get(name, 0.0), dfs_pos[name]),
    )


def random_order(
    tree: TreeLike, basic_events: Sequence[str], seed: int = 0
) -> List[str]:
    """A seeded random permutation (the ablation's control arm)."""
    order = list(basic_events)
    random.Random(seed).shuffle(order)
    return order


#: Registry used by the CLI and the ordering ablation benchmark.
HEURISTICS: Dict[str, Callable[[TreeLike, Sequence[str]], List[str]]] = {
    "declaration": declaration_order,
    "dfs": dfs_order,
    "bfs": bfs_order,
    "weight": weight_order,
}
