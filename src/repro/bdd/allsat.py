"""AllSat: enumerate satisfying assignments of a BDD (paper Algorithm 3).

The paper's Algorithm 3 collects "every path that leads to the terminal 1".
A path assigns values only to the variables it branches on; the remaining
variables are *don't-cares*.  We expose both views:

* :func:`iter_cubes` — one partial assignment (cube) per 1-path, exactly the
  paper's "collect every path" reading;
* :func:`iter_models` — total assignments over an explicit variable scope,
  i.e. the satisfying status vectors ``[[b]]``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .manager import BDDManager
from .ref import Ref

#: A cube maps variable names to booleans; absent variables are don't-cares.
Cube = Dict[str, bool]


#: Path-stack frame opcodes for the mutate-and-undo DFS below.
_VISIT = 0
_SET = 1
_UNSET = 2


def iter_cubes(manager: BDDManager, u: Ref) -> Iterator[Cube]:
    """Yield one cube per root-to-``1`` path (depth-first, low edge first).

    The generator is lazy, so callers may stop after the first witness.

    One shared partial-assignment dict is mutated along the path and
    undone on backtrack (the explicit-stack analogue of recursive
    ``partial[name] = v; recurse(); del partial[name]``).  The previous
    implementation copied the dict on every edge push — O(depth) fresh
    allocations per node on the MCS-enumeration hot path; only the
    yielded cubes are materialised now.
    """
    if u is manager.false:
        return
    if u is manager.true:
        yield {}
        return
    partial: Cube = {}
    stack: List[tuple] = [(_VISIT, u)]
    while stack:
        op, arg = stack.pop()
        if op == _SET:
            name, value = arg
            partial[name] = value
        elif op == _UNSET:
            del partial[arg]
        else:
            node = arg
            if node.is_terminal:
                if node.value:
                    yield dict(partial)
                continue
            name = manager.name_of(node.level)
            # Frames pop LIFO: set name=False, walk low, set name=True,
            # walk high, then undo — so low-edge paths come out first.
            stack.append((_UNSET, name))
            stack.append((_VISIT, node.high))
            stack.append((_SET, (name, True)))
            stack.append((_VISIT, node.low))
            stack.append((_SET, (name, False)))


def count_cubes(manager: BDDManager, u: Ref) -> int:
    """Number of distinct root-to-``1`` paths."""
    return sum(1 for _ in iter_cubes(manager, u))


def iter_models(
    manager: BDDManager,
    u: Ref,
    over: Sequence[str],
    fixed: Optional[Mapping[str, bool]] = None,
) -> Iterator[Dict[str, bool]]:
    """Yield total satisfying assignments over the variables ``over``.

    Don't-care variables of each cube are expanded to both values, so the
    output is exactly the set of status vectors satisfying the BDD.

    Args:
        manager: Owning manager.
        u: Root of the BDD.
        over: Variables each model must assign (superset of the support).
        fixed: Optional pre-set values for some variables; cubes that
            contradict them are skipped and matching models inherit them.
    """
    scope = list(over)
    fixed = dict(fixed or {})
    for cube in iter_cubes(manager, u):
        if any(name in cube and cube[name] != value for name, value in fixed.items()):
            continue
        merged = {**fixed, **cube}
        free = [name for name in scope if name not in merged]
        yield from _expand(merged, free, scope)


def _expand(
    partial: Mapping[str, bool], free: Sequence[str], scope: Sequence[str]
) -> Iterator[Dict[str, bool]]:
    """Expand the don't-cares of one cube into total assignments.

    One working dict is mutated through all ``2^len(free)`` combinations
    (earlier free variables are the most significant bits, so the output
    order matches the old recursive expansion, False before True) instead
    of copying the partial assignment at every recursion level.
    """
    current = dict(partial)
    if not free:
        yield {name: current[name] for name in scope}
        return
    n = len(free)
    for mask in range(1 << n):
        for i, name in enumerate(free):
            current[name] = bool((mask >> (n - 1 - i)) & 1)
        yield {name: current[name] for name in scope}


def all_models(
    manager: BDDManager, u: Ref, over: Sequence[str]
) -> List[Dict[str, bool]]:
    """Eager version of :func:`iter_models` (handy in tests)."""
    return list(iter_models(manager, u, over))


def any_model(
    manager: BDDManager, u: Ref, over: Sequence[str]
) -> Optional[Dict[str, bool]]:
    """One satisfying total assignment, or ``None`` if unsatisfiable."""
    for model in iter_models(manager, u, over):
        return model
    return None
