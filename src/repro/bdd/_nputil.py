"""Soft numpy dependency for the array-native kernel.

The kernel's node store is plain ``array.array('q')`` buffers, so every
algorithm has a pure-Python code path and the library works on a bare
interpreter.  numpy, when importable, accelerates the bulk passes that
are natural matrix work — the vectorised multi-profile probability
sweep, snapshot validation/compaction, and the unique-table bulk rehash
— by viewing those buffers zero-copy via ``np.frombuffer``.

Callers must read :data:`np` through this module at *call time*
(``_nputil.np``), never ``from ... import np``: the test suite and the
no-numpy CI leg disable the fast paths by setting ``REPRO_NO_NUMPY=1``
or monkeypatching ``_nputil.np`` to ``None``, and a frozen import would
bypass that switch.  See DESIGN.md ("numpy is a soft dependency").
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np  # type: ignore[import-not-found]
except Exception:  # pragma: no cover - anything short of a clean import
    np = None  # type: ignore[assignment]

if os.environ.get("REPRO_NO_NUMPY"):
    # Forced fallback: behave exactly as if numpy were not installed.
    np = None  # type: ignore[assignment]


def have_numpy() -> bool:
    """True iff the vectorised fast paths are enabled right now."""
    return np is not None
