"""The query-kind registry: one descriptor per query kind.

Before PR 9, adding a query kind meant hand-threading it through six
layers: a :class:`~repro.checker.engine.ModelChecker` method, the kind
dispatch in :mod:`repro.service.batch`, ``QuerySpec`` validation, the
parallel planner's per-kind cost weights, a ``bfl`` CLI surface, and
report shaping.  A :class:`QueryKind` bundles all of that into one
object, and :class:`QueryKindRegistry` is the single source of truth the
service layer, the checker facade, the shard planner and the CLI consult.

Registering a new kind is one :func:`QueryKindRegistry.register` call —
see :mod:`repro.engine.kinds` for the built-ins (the ``synthesize`` kind
is the worked example: it arrived with this module and touched no
dispatch code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import QuerySpecError

#: ``execute`` hooks return a mapping of ``QueryResult`` field names
#: (``holds``, ``sets``, ``probability``, ``synthesis``, ...) to values;
#: the caller merges them into the result row.
ResultFields = Dict[str, Any]


@dataclass(frozen=True)
class QueryKind:
    """Everything the engine knows about one query kind.

    Attributes:
        name: The spec's ``kind`` string (``"check"``, ``"mcs"``, ...).
        summary: One-line description for ``bfl batch --list-kinds`` and
            the docs kind table.
        weight: Relative evaluation weight for the shard planner's cost
            model (:func:`repro.service.parallel.estimate_cost`).
        requires: ``(field, message)`` pairs: spec fields that must be
            set for this kind.  ``message`` is a format template (it may
            reference ``{kind}``) rendered into the ``QuerySpecError``.
        accepts: Kind-owned *optional* spec fields (``profiles``,
            ``candidates``, ...).  Setting such a field on a spec of a
            kind that does not accept it is rejected with a derived
            "only applies to" message — no kind lists another's fields.
        validate: Optional extra validation hook ``(spec) -> None``
            (raise :class:`~repro.errors.QuerySpecError` to reject).
            Runs after the generic field checks.
        statements: ``(spec, session) -> [Statement]``: the statement(s)
            the spec needs parsed/translated (first entry is the query's
            principal statement).  ``None`` means the default — parse
            ``spec.formula``.
        execute: ``(session, spec, statement) -> ResultFields``: answer
            the query against an analysis session (or any object with
            the same ``checker`` / ``parse`` / ``prob_checker`` surface).
        promote: Optional ``(spec, statement) -> Optional[str]``: name
            of the kind that should actually serve this statement (the
            ``check`` kind promotes ``P(...)`` texts to ``probability``
            and ``SYNTHESIZE(...)`` texts to ``synthesize`` so query
            files stay kind-free).  ``None`` result means no promotion.
        cost_factor: Optional ``(spec) -> float`` multiplier on the
            planner's cost estimate (the ``synthesize`` kind scales with
            its candidate-sweep width).
        cli: Where the kind surfaces on the command line (metadata for
            ``--list-kinds`` and the docs).
    """

    name: str
    summary: str
    weight: float = 1.0
    requires: Tuple[Tuple[str, str], ...] = ()
    accepts: Tuple[str, ...] = ()
    validate: Optional[Callable[[Any], None]] = None
    statements: Optional[Callable[[Any, Any], List[Any]]] = None
    execute: Optional[Callable[[Any, Any, Any], ResultFields]] = None
    promote: Optional[Callable[[Any, Any], Optional[str]]] = None
    cost_factor: Optional[Callable[[Any], float]] = None
    cli: str = ""

    def required_fields(self) -> Tuple[str, ...]:
        return tuple(field_name for field_name, _ in self.requires)


class QueryKindRegistry:
    """Ordered name -> :class:`QueryKind` table.

    Registration order is public API: ``names()`` feeds the service
    layer's ``KINDS`` tuple, error messages and ``--list-kinds`` output,
    all of which are pinned by tests.
    """

    def __init__(self) -> None:
        self._kinds: Dict[str, QueryKind] = {}

    def register(self, kind: QueryKind) -> QueryKind:
        if kind.name in self._kinds:
            raise ValueError(f"query kind {kind.name!r} is already registered")
        if kind.execute is None:
            raise ValueError(f"query kind {kind.name!r} has no execute hook")
        self._kinds[kind.name] = kind
        return kind

    def get(self, name: str) -> QueryKind:
        try:
            return self._kinds[name]
        except KeyError:
            raise QuerySpecError(
                f"unknown query kind {name!r} "
                f"(expected one of {', '.join(self._kinds)})"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._kinds)

    def weight(self, name: str, default: float = 1.0) -> float:
        kind = self._kinds.get(name)
        return kind.weight if kind is not None else default

    def owners_of(self, field_name: str) -> Tuple[str, ...]:
        """Kinds that accept an optional owned spec field."""
        return tuple(
            kind.name
            for kind in self._kinds.values()
            if field_name in kind.accepts
        )

    def owned_fields(self) -> Tuple[str, ...]:
        """Every kind-owned optional spec field, registration order."""
        seen: Dict[str, None] = {}
        for kind in self._kinds.values():
            for field_name in kind.accepts:
                seen.setdefault(field_name, None)
        return tuple(seen)

    def __contains__(self, name: object) -> bool:
        return name in self._kinds

    def __iter__(self) -> Iterator[QueryKind]:
        return iter(self._kinds.values())

    def __len__(self) -> int:
        return len(self._kinds)
