"""Built-in query kinds and the shared execution helpers.

Each kind's hooks were extracted verbatim from the former per-kind
``if``/``elif`` chains in :mod:`repro.service.batch` (PR 2-8), so the
service layer's behaviour — messages, result shapes, promotion rules —
is unchanged; the chains are gone.  :func:`run_query` is the single
dispatch path shared by :meth:`repro.checker.engine.ModelChecker.execute`
and the batch evaluator.

Module-level imports stay below the checker/service layers (logic, BDD
kernel, errors) so the registry can be consulted from anywhere; the
hooks import the heavier machinery lazily at call time.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from ..bdd.quantify import is_satisfiable, is_tautology
from ..errors import LogicError, QuerySpecError, ReproError, error_kind
from ..logic.ast_nodes import (
    MCS,
    MPS,
    SUP,
    Atom,
    Exists,
    Forall,
    Formula,
    IDP,
    ProbabilityQuery,
    Query,
    Statement,
    Synthesize,
)
from ..logic.parser import format_statement, parse_request
from .registry import QueryKind, QueryKindRegistry, ResultFields

#: The process-wide registry every entry point consults.
REGISTRY = QueryKindRegistry()


def _sets_view(sets):
    from ..service.queries import sets_view

    return sets_view(sets)


def _reject_vector_for_probabilistic(spec, parenthetical: bool) -> None:
    suffix = (
        " (use evidence or conditioning inside P(...) instead)"
        if parenthetical
        else ""
    )
    if spec.failed is not None or spec.bits is not None:
        raise QuerySpecError(
            f"query {spec.id!r}: probabilistic queries measure over all "
            f"vectors; do not pass failed=/bits={suffix}"
        )


# ----------------------------------------------------------------------
# statements hooks (parse/translate phase)
# ----------------------------------------------------------------------


def _statements_default(spec, session) -> List[Statement]:
    return [session.parse(spec.formula)]


def _statements_minimal_sets(constructor):
    def hook(spec, session) -> List[Statement]:
        target = spec.element if spec.element is not None else session.tree.top
        return [constructor(Atom(target))]

    return hook


def _statements_probability(spec, session) -> List[Statement]:
    statement = session.parse(spec.formula)
    if isinstance(statement, Formula):
        # A bare layer-1 formula means "compute P(formula)"; the wrapper
        # is a frozen dataclass, so structural dedup with explicit
        # P(...) texts still applies.
        return [ProbabilityQuery(formula=statement)]
    if not isinstance(statement, ProbabilityQuery):
        raise QuerySpecError(
            f"query {spec.id!r}: kind 'probability' needs a "
            "layer-1 formula or a P(...) query"
        )
    return [statement]


def _statements_probability_sweep(spec, session) -> List[Statement]:
    statement = session.parse(spec.formula)
    if (
        isinstance(statement, ProbabilityQuery)
        and statement.condition is None
        and statement.comparator is None
        and not statement.settings
    ):
        # Accept a bare `P(phi)` spelling; the sweep measures phi under
        # each profile, so only the inner formula matters.
        statement = statement.formula
    if not isinstance(statement, Formula):
        raise QuerySpecError(
            f"query {spec.id!r}: kind 'probability-sweep' needs "
            "a layer-1 formula (per-profile settings come from "
            "'profiles', not the query text)"
        )
    return [statement]


def _statements_independence(spec, session) -> List[Statement]:
    return [session.parse(spec.formula), session.parse(spec.other)]


def _statements_synthesize(spec, session) -> List[Statement]:
    statement = session.parse(spec.formula)
    if isinstance(statement, Synthesize):
        if spec.candidates:
            raise QuerySpecError(
                f"query {spec.id!r}: pass candidates either in the "
                "SYNTHESIZE(...) text or in 'candidates', not both"
            )
        if spec.candidate_sets is not None and statement.candidates:
            raise QuerySpecError(
                f"query {spec.id!r}: a candidate-sweep takes its sets "
                "from 'candidate_sets'; drop the candidates from the "
                "SYNTHESIZE(...) text"
            )
        return [statement]
    if isinstance(statement, Formula):
        # The wrapper is a frozen dataclass, so structural dedup with
        # explicit SYNTHESIZE(...) texts still applies.
        return [Synthesize(statement, tuple(spec.candidates or ()))]
    raise QuerySpecError(
        f"query {spec.id!r}: kind 'synthesize' needs a layer-1 "
        "formula or a SYNTHESIZE(...) query"
    )


# ----------------------------------------------------------------------
# execute hooks (evaluate phase)
# ----------------------------------------------------------------------


def _execute_check(session, spec, statement) -> ResultFields:
    # ModelChecker.check rejects a vector on a layer-2 query and a
    # missing vector on a layer-1 formula; pass the spec's vector
    # through so those diagnostics surface.
    holds = session.checker.check(
        statement,
        failed=list(spec.failed) if spec.failed is not None else None,
        bits=list(spec.bits) if spec.bits is not None else None,
    )
    return {"holds": holds}


def _execute_satisfaction_set(session, spec, statement) -> ResultFields:
    satset = session.checker.satisfaction_set(statement)
    return {
        "vector_count": len(satset),
        "holds": bool(satset),
        "sets": _sets_view(
            satset.operational_sets()
            if spec.view == "operational"
            else satset.failed_sets()
        ),
    }


def _execute_mcs(session, spec, statement) -> ResultFields:
    return {"sets": _sets_view(session.checker.minimal_cut_sets(spec.element))}


def _execute_mps(session, spec, statement) -> ResultFields:
    return {"sets": _sets_view(session.checker.minimal_path_sets(spec.element))}


def _execute_counterexample(session, spec, statement) -> ResultFields:
    cex = session.checker.counterexample(
        statement,
        failed=list(spec.failed) if spec.failed is not None else None,
        bits=list(spec.bits) if spec.bits is not None else None,
        method=spec.method,
    )
    return {
        "counterexample": {
            "original": dict(cex.original),
            "vector": dict(cex.vector),
            "changed": list(cex.changed),
            "def7_compliant": cex.def7_compliant,
        }
    }


def _execute_independence(session, spec, statement) -> ResultFields:
    result = session.checker.independence(statement, session.parse(spec.other))
    return {
        "holds": result.independent,
        "independence": {
            "independent": result.independent,
            "shared": sorted(result.shared),
            "left_influencers": sorted(result.left_influencers),
            "right_influencers": sorted(result.right_influencers),
        },
    }


def _execute_probability(session, spec, statement) -> ResultFields:
    _reject_vector_for_probabilistic(spec, parenthetical=True)
    if isinstance(statement, Formula):
        statement = ProbabilityQuery(formula=statement)
    outcome = session.prob_checker().evaluate(statement)
    return {
        "probability": outcome.value,
        "holds": outcome.holds,
        "condition_probability": outcome.condition_probability,
    }


def _execute_probability_sweep(session, spec, statement) -> ResultFields:
    _reject_vector_for_probabilistic(spec, parenthetical=False)
    values = session.prob_checker().sweep(statement, spec.profiles or ())
    return {"probabilities": tuple(values)}


def _execute_synthesize(session, spec, statement) -> ResultFields:
    from ..checker.synthesis import synthesis_regions

    translator = session.checker.translator
    if not isinstance(statement, Synthesize):
        raise QuerySpecError(
            f"query {spec.id!r}: kind 'synthesize' needs a layer-1 "
            "formula or a SYNTHESIZE(...) query"
        )
    if spec.candidate_sets is not None:
        sweep = [
            synthesis_regions(
                translator, statement.formula, tuple(candidates) or None
            ).to_dict()
            for candidates in spec.candidate_sets
        ]
        return {"synthesis": {"sweep": sweep}}
    regions = synthesis_regions(
        translator, statement.formula, statement.candidates or None
    )
    return {"synthesis": regions.to_dict(), "holds": regions.satisfiable}


# ----------------------------------------------------------------------
# promotion and validation hooks
# ----------------------------------------------------------------------


def _promote_check(spec, statement) -> Optional[str]:
    # A `check` whose formula parsed to P(...) / SYNTHESIZE(...) is
    # served by the specialised kind, so query files stay kind-free.
    if isinstance(statement, ProbabilityQuery):
        return "probability"
    if isinstance(statement, Synthesize):
        return "synthesize"
    return None


def _validate_probability_sweep(spec) -> None:
    if not spec.profiles:
        raise QuerySpecError(
            f"query {spec.id!r}: probability-sweep needs a "
            "non-empty 'profiles' list"
        )
    for position, profile in enumerate(spec.profiles):
        if not isinstance(profile, Mapping):
            raise QuerySpecError(
                f"query {spec.id!r}: profile #{position + 1} is "
                "not a mapping of event name to probability"
            )


def _validate_synthesize(spec) -> None:
    if spec.candidates is not None and spec.candidate_sets is not None:
        raise QuerySpecError(
            f"query {spec.id!r}: provide at most one of "
            "candidates=/candidate_sets="
        )
    if spec.candidate_sets is not None:
        if not spec.candidate_sets:
            raise QuerySpecError(
                f"query {spec.id!r}: 'candidate_sets' must be a "
                "non-empty list of candidate-event lists"
            )
        for position, candidates in enumerate(spec.candidate_sets):
            if isinstance(candidates, str) or not isinstance(
                candidates, (list, tuple)
            ):
                raise QuerySpecError(
                    f"query {spec.id!r}: candidate set #{position + 1} "
                    "is not a list of event names"
                )


def _synthesize_cost_factor(spec) -> float:
    # A candidate sweep is one projection per set — the planner sees the
    # sweep width so hundreds of sets spread across workers.
    if spec.candidate_sets is not None:
        return float(max(1, len(spec.candidate_sets)))
    return 1.0


# ----------------------------------------------------------------------
# Registration (order is public API: KINDS, messages, --list-kinds)
# ----------------------------------------------------------------------


CHECK = REGISTRY.register(QueryKind(
    name="check",
    summary="b, T |= phi (layer 1, with a vector) or T |= psi (layer 2)",
    weight=1.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    statements=_statements_default,
    execute=_execute_check,
    promote=_promote_check,
    cli="bfl check / bfl batch",
))

SATISFACTION_SET = REGISTRY.register(QueryKind(
    name="satisfaction-set",
    summary="[[phi]]: every satisfying status vector (Algorithm 3)",
    weight=3.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    statements=_statements_default,
    execute=_execute_satisfaction_set,
    cli="bfl allsat / bfl batch",
))

MCS_KIND = REGISTRY.register(QueryKind(
    name="mcs",
    summary="minimal cut sets of 'element' (default: the top event)",
    weight=4.0,
    statements=_statements_minimal_sets(MCS),
    execute=_execute_mcs,
    cli="bfl mcs / bfl batch",
))

MPS_KIND = REGISTRY.register(QueryKind(
    name="mps",
    summary="minimal path sets of 'element' (default: the top event)",
    weight=4.0,
    statements=_statements_minimal_sets(MPS),
    execute=_execute_mps,
    cli="bfl mps / bfl batch",
))

COUNTEREXAMPLE = REGISTRY.register(QueryKind(
    name="counterexample",
    summary="counterexample vector for an unsatisfied formula (Algorithm 4)",
    weight=2.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    statements=_statements_default,
    execute=_execute_counterexample,
    cli="bfl cex / bfl batch",
))

INDEPENDENCE = REGISTRY.register(QueryKind(
    name="independence",
    summary="IDP(formula, other) with the shared-influencer explanation",
    weight=1.5,
    requires=(
        ("formula", "kind {kind!r} needs a formula"),
        ("other", "independence needs a second formula ('other')"),
    ),
    statements=_statements_independence,
    execute=_execute_independence,
    cli="bfl batch",
))

PROBABILITY = REGISTRY.register(QueryKind(
    name="probability",
    summary="PFL query P(phi), P(phi | psi) >= p, ... over the scenario's"
    " failure probabilities",
    weight=1.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    statements=_statements_probability,
    execute=_execute_probability,
    cli="bfl prob / bfl batch",
))

PROBABILITY_SWEEP = REGISTRY.register(QueryKind(
    name="probability-sweep",
    summary="P(formula) under each 'profiles' entry in one vectorised pass",
    weight=1.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    accepts=("profiles",),
    validate=_validate_probability_sweep,
    statements=_statements_probability_sweep,
    execute=_execute_probability_sweep,
    cli="bfl batch",
))

SYNTHESIZE_KIND = REGISTRY.register(QueryKind(
    name="synthesize",
    summary="must-1/must-0/don't-care repair regions of 'formula' over"
    " candidate events",
    weight=2.0,
    requires=(("formula", "kind {kind!r} needs a formula"),),
    accepts=("candidates", "candidate_sets"),
    validate=_validate_synthesize,
    statements=_statements_synthesize,
    execute=_execute_synthesize,
    cost_factor=_synthesize_cost_factor,
    cli="bfl synth / bfl batch",
))


# ----------------------------------------------------------------------
# Shared dispatch helpers
# ----------------------------------------------------------------------


def statements_for(spec, session) -> List[Statement]:
    """The statement(s) a spec needs translated (element names resolve
    here so MCS/MPS specs share cache entries with textual ``MCS(...)``
    queries)."""
    kind = REGISTRY.get(spec.kind)
    hook = kind.statements or _statements_default
    return hook(spec, session)


def resolve_kind(spec, statement) -> QueryKind:
    """The kind that actually serves ``statement`` (after promotion)."""
    kind = REGISTRY.get(spec.kind)
    if kind.promote is not None and statement is not None:
        target = kind.promote(spec, statement)
        if target is not None:
            kind = REGISTRY.get(target)
    return kind


def execute_kind(session, spec, statement) -> ResultFields:
    """Promote + execute: the one dispatch point for every entry path."""
    return resolve_kind(spec, statement).execute(session, spec, statement)


class CheckerSession:
    """Adapter giving a bare :class:`ModelChecker` the session surface
    the execute hooks expect (``checker`` / ``tree`` / ``parse`` /
    ``prob_checker``), so one-shot :meth:`ModelChecker.execute` calls
    run the exact same hook code as the batch service."""

    def __init__(
        self,
        checker,
        probabilities: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.checker = checker
        self._prob_overrides: Dict[str, float] = dict(probabilities or {})
        self._prob_checker = None

    @property
    def tree(self):
        return self.checker.tree

    def parse(self, formula) -> Statement:
        if not isinstance(formula, str):
            return formula
        statement, _ = parse_request(formula.strip())
        return statement

    def prob_checker(self):
        if self._prob_checker is None:
            from ..prob.queries import ProbabilityChecker

            self._prob_checker = ProbabilityChecker(
                overrides=self._prob_overrides,
                translator=self.checker.translator,
            )
        return self._prob_checker


def run_query(session, spec):
    """Answer one spec against a session, as a ``QueryResult``.

    This is the governance-free core dispatch (parse -> promote ->
    execute -> shape); the batch evaluator adds per-query governors,
    chaos hooks and kernel checkpoints around the same hooks.
    """
    from ..service.queries import QueryResult

    start = time.perf_counter()
    fields: ResultFields = {}
    formula_text: Optional[str] = None
    error: Optional[str] = None
    kind_tag: Optional[str] = None
    try:
        statements = statements_for(spec, session)
        statement = statements[0] if statements else None
        formula_text = (
            format_statement(statement) if statement is not None else None
        )
        fields = execute_kind(session, spec, statement)
    except ReproError as exc:
        error = str(exc)
        kind_tag = error_kind(exc)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return QueryResult(
        id=spec.id,
        kind=spec.kind,
        tree=spec.tree,
        formula=formula_text,
        ok=error is None,
        elapsed_ms=elapsed_ms,
        error=error,
        error_kind=kind_tag,
        **fields,
    )


def check_statement(checker, query: Query) -> bool:
    """Layer-2 truth of ``query`` for :meth:`ModelChecker.check`.

    The statement-type dispatch the checker facade shares with the
    registry's ``check`` kind (which reaches it via ``checker.check``).
    """
    translator = checker.translator
    manager = translator.manager
    if isinstance(query, Exists):
        return is_satisfiable(manager, translator.bdd(query.operand))
    if isinstance(query, Forall):
        return is_tautology(manager, translator.bdd(query.operand))
    if isinstance(query, IDP):
        return checker.independence(query.left, query.right).independent
    if isinstance(query, SUP):
        return checker.independence(
            Atom(query.element), Atom(checker.tree.top)
        ).independent
    if isinstance(query, Synthesize):
        # SYNTHESIZE as a plain check asks "is the property achievable
        # at all" — satisfiability of the target formula.
        return is_satisfiable(manager, translator.bdd(query.formula))
    if isinstance(query, ProbabilityQuery):
        raise LogicError(
            "probabilistic queries need failure probabilities; use "
            "repro.prob.ProbabilityChecker (sharing this checker's "
            "translator) or the batch service's probability "
            "configuration"
        )
    raise TypeError(f"cannot check {query!r}")
