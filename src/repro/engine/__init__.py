"""``repro.engine`` — the query-kind registry (PR 9).

One :class:`~repro.engine.registry.QueryKind` descriptor per query kind
bundles spec validation, statement parsing, execution against an
analysis session, the shard planner's cost weight and CLI metadata.
The checker facade (:meth:`repro.checker.engine.ModelChecker.execute`),
the batch service (:class:`repro.service.batch.BatchAnalyzer`), the
parallel planner (:func:`repro.service.parallel.estimate_cost`) and the
``bfl`` CLI all consult the same :data:`REGISTRY`, so adding a kind is
one ``REGISTRY.register(...)`` call (see :mod:`repro.engine.kinds` for
the built-ins — ``synthesize`` is the worked example).
"""

from .kinds import (
    REGISTRY,
    CheckerSession,
    check_statement,
    execute_kind,
    resolve_kind,
    run_query,
    statements_for,
)
from .registry import QueryKind, QueryKindRegistry

__all__ = [
    "CheckerSession",
    "QueryKind",
    "QueryKindRegistry",
    "REGISTRY",
    "check_statement",
    "execute_kind",
    "resolve_kind",
    "run_query",
    "statements_for",
]
