#!/usr/bin/env python3
"""Regenerate the paper's Table I: counterexample patterns 1-4.

For each row: classify the formula against the pattern registry (Def. 8),
check the example vector does not satisfy it, run Algorithm 4, and draw
the failure-propagation comparison the table shows graphically.

Run with:  python examples/counterexample_patterns.py
"""

from repro.ft import table1_tree
from repro.checker import ModelChecker, classify
from repro.logic import parse_formula
from repro.viz import counterexample_view

ROWS = [
    ("MCS(e1)", (0, 1, 0)),
    ("MCS(e1)", (1, 1, 1)),
    ("MPS(e1)", (1, 0, 1)),
    ("MPS(e1)", (0, 0, 0)),
    ("MCS(e1) & MCS(e3)", (0, 1, 0)),
    ("MPS(e1) & MPS(e3)", (1, 0, 1)),
]


def main():
    tree = table1_tree()
    checker = ModelChecker(tree)
    names = ", ".join(tree.basic_events)
    print(f"Table I tree: e1 = AND(e2, e3), e3 = OR(e4, e5); vectors over ({names})")
    print()

    for text, bits in ROWS:
        formula = parse_formula(text)
        patterns = classify(formula) or ["(no pattern)"]
        print("=" * 64)
        print(f"chi = {text}    pattern: {', '.join(patterns)}")
        print(f"example vector b = {bits}")
        satisfied = checker.check(formula, bits=bits)
        print(f"b satisfies chi: {satisfied}")
        if not satisfied:
            cex = checker.counterexample(formula, bits=bits)
            got = tuple(int(cex.vector[n]) for n in tree.basic_events)
            print(f"Algorithm 4 counterexample b' = {got}")
            print(counterexample_view(tree, cex))
        print()


if __name__ == "__main__":
    main()
