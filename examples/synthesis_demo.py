#!/usr/bin/env python3
"""Fault-tree synthesis and inference (paper Sec. V-E and reference [31]).

Three increasingly ambitious versions of "given observations, find a
tree":

1. the paper's naive assignment search (propositional, no tree);
2. generate-and-test synthesis of a tree satisfying ``b, T |= chi``;
3. genetic-programming inference of a tree from labelled status vectors
   (the approach of the paper's reference [31]), recovering Fig. 1's
   structure function from its truth table.

Run with:  python examples/synthesis_demo.py
"""

import itertools

from repro.ft import figure1_tree, structure_function
from repro.checker import (
    GeneticConfig,
    ModelChecker,
    infer_fault_tree,
    naive_assignment_search,
    synthesize_tree,
)
from repro.logic import parse_formula
from repro.viz import render_tree


def demo_naive():
    print("1. Naive assignment search (Sec. V-E's 'more trivial approach')")
    formula = parse_formula("(power & cooling) | backup")
    fixed = {"backup": False}
    assignment = naive_assignment_search(formula, fixed)
    print(f"   formula: {formula}")
    print(f"   fixed basic events: {fixed}")
    print(f"   satisfying assignment: {assignment}")
    print()


def demo_generate_and_test():
    print("2. Generate-and-test: find T with b, T |= MCS(G)")
    formula = parse_formula("MCS(G)")
    vector = {"x1": True, "x2": False, "x3": False}
    tree = synthesize_tree(
        formula, vector, basic_events=["x1", "x2", "x3"], seed=4
    )
    print(f"   b = {vector}")
    print("   synthesised tree:")
    print(render_tree(tree))
    checker = ModelChecker(tree)
    print(f"   b, T |= MCS(G): {checker.check(formula, vector=vector)}")
    print()


def demo_genetic_inference():
    print("3. Genetic inference from labelled vectors (reference [31])")
    target = figure1_tree()
    names = list(target.basic_events)
    examples = []
    for bits in itertools.product([False, True], repeat=len(names)):
        vector = dict(zip(names, bits))
        examples.append((vector, structure_function(target, vector)))
    learned = infer_fault_tree(
        names, examples, GeneticConfig(seed=2, generations=150)
    )
    print("   target: Fig. 1 (CP/R)    learned structure:")
    print(render_tree(learned))
    mistakes = sum(
        1
        for vector, label in examples
        if structure_function(learned, vector) != label
    )
    print(f"   classification errors on all 16 vectors: {mistakes}")


def main():
    demo_naive()
    demo_generate_and_test()
    demo_genetic_inference()


if __name__ == "__main__":
    main()
