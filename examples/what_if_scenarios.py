#!/usr/bin/env python3
"""What-if analysis on an industrial-style fault tree.

The paper's introduction motivates BFL with exactly this workflow: "if
scenarios are analysed, the fault tree has to be altered, for instance if
one likes to compute the system reliability given that certain subsystems
have failed".  With BFL's evidence operator nothing is altered — the
scenario lives in the formula.

This example models a small power-plant cooling system (authored in the
Galileo exchange format), then runs a scenario screening:

* baseline minimal cut sets,
* cut sets conditioned on evidence (grid already lost),
* VOT-style "how many redundant pumps may we lose" bounds,
* superfluousness screening for every basic event.

Run with:  python examples/what_if_scenarios.py
"""

from repro.ft import loads, structural_importance
from repro.checker import ModelChecker

PLANT = """
toplevel "meltdown";
"meltdown"  and "heat" "containment_fail";
"heat"      or  "power_loss" "coolant_loss";
"power_loss" and "grid" "dieselA" "dieselB";
"coolant_loss" 3of4 "pump1" "pump2" "pump3" "pump4";
"containment_fail" or "valve_stuck" "operator_error";
"grid";           "dieselA";       "dieselB";
"pump1";          "pump2";         "pump3";   "pump4";
"valve_stuck";    "operator_error";
"""


def show_sets(title, sets):
    print(title)
    for item in sets:
        print("   {" + ", ".join(sorted(item)) + "}")
    print()


def main():
    tree = loads(PLANT)
    checker = ModelChecker(tree)

    show_sets(
        f"Baseline: {len(checker.minimal_cut_sets())} minimal cut sets",
        checker.minimal_cut_sets(),
    )

    # Scenario 1: the grid is already down.  Which *additional* failures
    # complete a cut?  Evidence keeps the tree untouched.
    conditioned = checker.satisfaction_set("MCS(meltdown)[grid := 1]")
    show_sets(
        "Scenario 'grid lost': minimal completions",
        conditioned.failed_sets(),
    )

    # Scenario 2: redundancy bounds with the VOT operator (the paper's
    # "upper/lower boundaries for failed elements").
    print("Redundancy bounds (VOT):")
    for k in (1, 2, 3):
        text = (
            f"forall (VOT(<= {k}; pump1, pump2, pump3, pump4) "
            "=> !coolant_loss)"
        )
        verdict = checker.check(text)
        print(
            f"   losing at most {k} pump(s) can never cause coolant loss: "
            f"{'holds' if verdict else 'does NOT hold'}"
        )
    print()

    # Scenario 3: can a meltdown happen without any human involvement?
    no_human = checker.check(
        "exists (meltdown & !operator_error)"
    )
    print(f"Meltdown possible without operator error: {'yes' if no_human else 'no'}")
    print()

    # Screening: superfluous events and structural importance.
    print("Superfluousness / structural importance screening:")
    for name in tree.basic_events:
        sup = checker.superfluous(name)
        importance = structural_importance(tree, name)
        print(
            f"   {name:15} SUP={'yes' if sup else 'no ':3} "
            f"importance={float(importance):.4f}"
        )


if __name__ == "__main__":
    main()
