#!/usr/bin/env python3
"""Quickstart: build a fault tree, ask BFL questions, explain a failure.

Reproduces the paper's Fig. 1 example end to end:

1. build the "Existence of COVID-19 Pathogens/Reservoir" tree;
2. compute its minimal cut sets and minimal path sets;
3. model-check a handful of BFL formulae (Algorithms 1-3);
4. construct a counterexample (Algorithm 4) and draw the propagation.

Run with:  python examples/quickstart.py
"""

from repro.ft import FaultTreeBuilder
from repro.checker import ModelChecker
from repro.viz import counterexample_view, render_tree


def build_tree():
    """Fig. 1 of the paper, built through the fluent API."""
    return (
        FaultTreeBuilder()
        .basic_event("IW", "Infected worker joining the team")
        .basic_event("H3", "Detection error")
        .basic_event("IT", "Infected object used by the team")
        .basic_event("H2", "General disinfection error")
        .and_gate("CP", "IW", "H3", description="COVID-19 pathogens exist")
        .and_gate("CR", "IT", "H2", description="COVID-19 reservoir exists")
        .or_gate("CP/R", "CP", "CR", description="Pathogens or reservoir")
        .build("CP/R")
    )


def main():
    tree = build_tree()
    print("The fault tree (paper Fig. 1):")
    print(render_tree(tree, show_descriptions=True))
    print()

    checker = ModelChecker(tree)

    print("Minimal cut sets (ways the system fails):")
    for mcs in checker.minimal_cut_sets():
        print("   {" + ", ".join(sorted(mcs)) + "}")
    print("Minimal path sets (ways to keep it operational):")
    for mps in checker.minimal_path_sets():
        print("   {" + ", ".join(sorted(mps)) + "}")
    print()

    queries = [
        "forall (CP => CP/R)",        # failure of CP always fails the top
        "exists (CP & CR)",            # both subsystems can fail together
        "forall (IW => CP/R)",         # one infected worker is NOT enough
        "IDP(CP, CR)",                 # the two branches are independent
        "SUP(H2)",                     # H2 is not superfluous
    ]
    print("BFL queries:")
    for text in queries:
        verdict = checker.check(text)
        print(f"   {text:25} -> {'holds' if verdict else 'does NOT hold'}")
    print()

    # The Sec. VI opening example: {IW, H3, IT} is a cut set, not minimal.
    print("Counterexample (Algorithm 4): is {IW, H3, IT} an MCS?")
    vector = tree.vector_from_failed(["IW", "H3", "IT"])
    print(f"   MCS(CP/R) holds for it? {checker.check('MCS(CP/R)', vector=vector)}")
    cex = checker.counterexample("MCS(CP/R)", vector=vector)
    print(counterexample_view(tree, cex))


if __name__ == "__main__":
    main()
