#!/usr/bin/env python3
"""Batch analysis: serve a whole battery of BFL queries from shared state.

The Sec. VII analysis is the canonical workload: many related questions
about one tree. This example runs a mixed battery (checks, satisfaction
sets, MCS/MPS listings, a counterexample and an independence query)
through :class:`repro.service.BatchAnalyzer` and prints the per-query
results alongside the cache statistics that explain the sharing.

Run with:  PYTHONPATH=src python examples/batch_analysis.py
"""

from repro import BatchAnalyzer, build_covid_tree
from repro.ft import figure1_tree


def main():
    analyzer = BatchAnalyzer(
        {"covid": build_covid_tree(), "fig1": figure1_tree()}
    )

    battery = [
        # The paper's P1, asked twice over: the check and its witnesses.
        {"id": "p1", "formula": "forall (IS => MoT)", "tree": "covid"},
        {"id": "p1-witness", "formula": "[[ MCS(MoT) & IS ]]", "tree": "covid"},
        # Cut/path sets of the top level event.
        {"id": "cuts", "kind": "mcs", "tree": "covid"},
        {"id": "paths", "kind": "mps", "tree": "covid"},
        # Layer-1 check against a concrete status vector.
        {
            "id": "vector-check",
            "kind": "check",
            "formula": "MCS(IWoS)",
            "failed": ["H1", "VW"],
            "tree": "covid",
        },
        # Algorithm 4: how do we minimally repair this vector?
        {
            "id": "cex",
            "kind": "counterexample",
            "formula": "MCS(IWoS)",
            "failed": ["IW", "H3", "IT"],
            "tree": "covid",
        },
        # P8: independence with the shared-influencer explanation.
        {
            "id": "p8",
            "kind": "independence",
            "formula": "CIO",
            "other": "CIS",
            "tree": "covid",
        },
        # A second scenario in the same batch (the Fig. 1 tree).
        {"id": "fig1-cuts", "kind": "mcs", "tree": "fig1"},
    ]

    report = analyzer.run(battery)

    print("Per-query results")
    print("-" * 60)
    for result in report.results:
        line = f"{result.id:12s} [{result.kind}]"
        if result.holds is not None:
            line += f" holds={result.holds}"
        if result.sets is not None:
            line += f" sets={len(result.sets)}"
        if result.counterexample is not None:
            line += f" changed={result.counterexample['changed']}"
        if result.independence is not None:
            line += f" shared={result.independence['shared']}"
        print(line + f"  ({result.elapsed_ms:.2f} ms)")

    print()
    print("Sharing statistics")
    print("-" * 60)
    queries = report.stats["queries"]
    print(f"statements: {queries['statements']} "
          f"({queries['unique_statements']} unique, "
          f"{queries['structural_dedup']} deduplicated)")
    for name, scenario in report.stats["scenarios"].items():
        translation = scenario["translation"]
        bdd = scenario["bdd"]
        print(
            f"{name}: translation {translation['formula_hits']} hits / "
            f"{translation['formula_misses']} misses; "
            f"BDD ops {bdd['hits']} hits / {bdd['misses']} misses; "
            f"{scenario['bdd_nodes']} nodes"
        )

    # Re-running the same battery is answered entirely from warm caches.
    rerun = analyzer.run(battery)
    warm = rerun.stats["scenarios"]["covid"]["translation"]
    print()
    print(
        f"re-run: {warm['formula_misses']} translation misses "
        f"(batch {rerun.elapsed_ms:.1f} ms vs first {report.elapsed_ms:.1f} ms)"
    )


if __name__ == "__main__":
    main()
