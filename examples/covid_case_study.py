#!/usr/bin/env python3
"""The full COVID-19 case study of the paper's Secs. IV and VII.

Builds the Fig. 2 fault tree (13 basic events, 16 gates), evaluates all
nine properties, and prints the paper-vs-computed scoreboard.  Every
verdict, every MCS/MPS list and the IDP explanation must match the paper
exactly — this script is the executable form of EXPERIMENTS.md.

Run with:  python examples/covid_case_study.py
"""

from repro.casestudy import build_covid_tree, build_report, render_report
from repro.checker import ModelChecker
from repro.viz import render_tree


def main():
    tree = build_covid_tree()
    print("The COVID-19 fault tree (paper Fig. 2):")
    print(render_tree(tree))
    print()

    print(render_report(build_report(ModelChecker(tree))))

    # A few follow-up queries beyond the paper's list, exercising evidence:
    checker = ModelChecker(tree)
    print()
    print("Follow-up what-if scenarios:")
    scenarios = [
        # If procedures are respected, can the top event still occur?
        ("exists (IWoS[H1 := 0])", "TLE reachable with H1 prevented?"),
        # Same question for the vulnerable worker.
        ("exists (IWoS[VW := 0])", "TLE reachable with no vulnerable worker?"),
        # With an infected worker already on site, does any single extra
        # failure suffice?
        (
            "exists (MCS(IWoS)[IW := 1, VW := 1, H1 := 1] & !H2 & !H3)",
            "MCS avoiding H2/H3 once IW, VW, H1 have failed?",
        ),
    ]
    for text, label in scenarios:
        verdict = checker.check(text)
        print(f"   {label:55} {'yes' if verdict else 'no'}")


if __name__ == "__main__":
    main()
