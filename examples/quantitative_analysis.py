#!/usr/bin/env python3
"""Quantitative analysis — the paper's future-work extension, implemented.

The paper closes with: "it makes sense to extend BFL to model
probabilities ... system reliability, availability and mean time to
failure".  This example runs the quantitative layer on the COVID-19 tree:

1. top-event unreliability (exact BDD computation vs bounds);
2. PBFL-lite queries ``P(phi) |><| c`` over full BFL formulae —
   including evidence and MCS operators;
3. the importance-measure table (Birnbaum, criticality, Fussell-Vesely),
   which quantifies the qualitative Sec. VII findings (H1 and VW sit in
   every minimal cut set, so their criticality is 1.0).

Run with:  python examples/quantitative_analysis.py
"""

from repro.casestudy import BASIC_EVENT_DESCRIPTIONS, build_covid_tree
from repro.prob import (
    ProbabilityChecker,
    enumeration_probability,
    importance_table,
    min_cut_upper_bound,
    parse_prob_query,
    rare_event_approximation,
    render_importance_table,
)

#: Illustrative failure probabilities (the paper's tree is qualitative).
PROBABILITIES = {
    "IW": 0.05,   # infected worker joins
    "IT": 0.04,   # infected object in use
    "IS": 0.06,   # infected surface
    "PP": 0.30,   # physical proximity on a construction site
    "VW": 0.15,   # vulnerable worker on site
    "UT": 0.20,   # shared transport
    "AB": 0.10,   # air blowing
    "MV": 0.10,   # mechanical ventilation
    "H1": 0.10,   # procedures not respected
    "H2": 0.08,   # general disinfection error
    "H3": 0.12,   # detection error
    "H4": 0.08,   # object disinfection error
    "H5": 0.08,   # surface disinfection error
}


def main():
    tree = build_covid_tree()
    checker = ProbabilityChecker(tree, overrides=PROBABILITIES)

    exact = checker.unreliability()
    reference = enumeration_probability(tree, overrides=PROBABILITIES)
    rare = rare_event_approximation(tree, overrides=PROBABILITIES)
    mcub = min_cut_upper_bound(tree, overrides=PROBABILITIES)
    print("Top-event unreliability P(IWoS):")
    print(f"   exact (BDD Shannon)          {exact:.8f}")
    print(f"   exact (2^13 enumeration)     {reference:.8f}")
    print(f"   min-cut upper bound          {mcub:.8f}")
    print(f"   rare-event approximation     {rare:.8f}")
    print()

    print("PBFL-lite queries:")
    queries = [
        "P(IWoS) <= 0.001",
        "P(MoT) >= 0.05",
        "P(IWoS[H1 := 0]) = 0",          # respecting procedures prevents TLE
        "P(MCS(IWoS) & H4) <= 0.0001",   # H4-involving minimal cuts are rare
    ]
    for text in queries:
        query = parse_prob_query(text)
        value = checker.probability(query.formula)
        verdict = checker.check(query)
        print(f"   {text:35} P = {value:.6g}  -> {'holds' if verdict else 'fails'}")
    print()

    print("Conditional risk (evidence lifted to probabilities):")
    for given in ("H1", "H1 & VW", "H1 & VW & IW"):
        print(
            f"   P(IWoS | {given:12}) = "
            f"{checker.conditional('IWoS', given):.6f}"
        )
    print()

    print("Importance measures:")
    rows = importance_table(tree, overrides=PROBABILITIES)
    print(render_importance_table(rows))
    print()
    top = rows[0]
    print(
        f"Most Birnbaum-important event: {top.name} "
        f"({BASIC_EVENT_DESCRIPTIONS[top.name]})"
    )


if __name__ == "__main__":
    main()
